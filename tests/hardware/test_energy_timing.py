"""Tests for the system energy and timing models against paper claims."""

import pytest

from repro.hardware import (
    ProcessNodes,
    SystemEnergyModel,
    TimingModel,
    VARIANTS,
    WorkloadProfile,
)


@pytest.fixture(scope="module")
def model():
    return SystemEnergyModel()


@pytest.fixture(scope="module")
def profile():
    return WorkloadProfile()


@pytest.fixture(scope="module")
def timing():
    return TimingModel()


class TestEnergyModel:
    def test_variant_ordering_at_120fps(self, model, profile):
        """Fig. 13: NPU-Full > S+NPU > NPU-ROI > BlissCam."""
        totals = {
            v: model.frame_energy(v, profile, 120).total for v in VARIANTS
        }
        assert totals["NPU-Full"] > totals["S+NPU"] > totals["NPU-ROI"]
        assert totals["NPU-ROI"] > totals["BlissCam"]

    def test_blisscam_saving_magnitude(self, model, profile):
        """Paper: 4.0x over NPU-Full at 120 FPS (we land in 3.5-6x)."""
        saving = model.savings_over("NPU-Full", "BlissCam", profile, 120)
        assert 3.5 < saving < 6.0

    def test_snpu_worse_than_npu_roi(self, model, profile):
        """Paper: S+NPU is ~1.1x NPU-ROI, driven by frame-buffer leakage."""
        s = model.frame_energy("S+NPU", profile, 120).total
        r = model.frame_energy("NPU-ROI", profile, 120).total
        assert 1.02 < s / r < 1.4

    def test_frame_buffer_is_the_snpu_penalty(self, model, profile):
        e = model.frame_energy("S+NPU", profile, 120)
        assert e.components["frame_buffer"] > e.components["roi_dnn_sensor"]

    def test_off_sensor_dominates_npu_full(self, model, profile):
        """Paper: off-sensor work is ~60 % of NPU-Full energy."""
        e = model.frame_energy("NPU-Full", profile, 120)
        assert 0.5 < e.off_sensor / e.total < 0.85

    def test_readout_dominates_conventional_sensor(self, model, profile):
        """Fig. 4: readout is ~2/3 of conventional sensor power."""
        e = model.frame_energy("NPU-Full", profile, 120)
        assert e.components["readout"] / e.sensor_side > 0.55

    def test_blisscam_overheads_are_small(self, model, profile):
        """Sec. VI-B: seg-map backhaul ~0.6 %, RLE ~0.04 % of total."""
        e = model.frame_energy("BlissCam", profile, 120)
        assert e.fraction("seg_map_backhaul") < 0.03
        assert e.fraction("rle") < 0.002

    def test_saving_grows_with_frame_rate(self, model, profile):
        """Fig. 16: saving grows from ~3.6x at 30 FPS to ~6.7x at 500 FPS."""
        savings = [
            model.savings_over("NPU-Full", "BlissCam", profile, fps)
            for fps in (30, 60, 120, 240, 500)
        ]
        assert all(a < b for a, b in zip(savings, savings[1:]))
        assert savings[0] < 4.2
        assert savings[-1] > 5.5

    def test_blisscam_readout_scales_with_sampling(self, model, profile):
        full = model.frame_energy("NPU-Full", profile, 120).components["readout"]
        bliss = model.frame_energy("BlissCam", profile, 120).components["readout"]
        assert bliss < 0.1 * full

    def test_process_node_sweep_direction(self, model, profile):
        """Fig. 17: older logic nodes shrink the saving; and a 7 nm SoC is
        more sensitive to the sensor logic node than a 22 nm SoC."""
        def saving(logic_nm, host_nm):
            m = model.with_nodes(
                ProcessNodes(sensor_logic_nm=logic_nm, host_nm=host_nm)
            )
            return m.savings_over("NPU-Full", "BlissCam", profile, 120)

        s7 = [saving(n, 7) for n in (16, 22, 40, 65)]
        assert all(a > b for a, b in zip(s7, s7[1:]))
        spread7 = s7[0] - s7[-1]
        s22 = [saving(n, 22) for n in (16, 22, 40, 65)]
        spread22 = s22[0] - s22[-1]
        assert spread7 > spread22

    def test_unknown_variant_raises(self, model, profile):
        with pytest.raises(ValueError):
            model.frame_energy("bogus", profile, 120)
        with pytest.raises(ValueError):
            model.frame_energy("BlissCam", profile, 0)

    def test_breakdown_total_is_sum(self, model, profile):
        e = model.frame_energy("BlissCam", profile, 120)
        assert e.total == pytest.approx(
            sum(v for _, v in sorted(e.components.items()))
        )

    def test_profile_seg_macs_scaling(self, profile):
        assert profile.seg_macs("NPU-Full") == profile.seg_macs_dense
        assert profile.seg_macs("BlissCam") < 0.15 * profile.seg_macs_dense
        with pytest.raises(ValueError):
            profile.seg_macs("nope")


class TestTimingModel:
    def test_latency_reduction_matches_paper(self, timing, profile):
        """Paper: 1.4x end-to-end latency reduction at 120 FPS."""
        full = timing.tracking_latency("NPU-Full", profile, 120).total
        bliss = timing.tracking_latency("BlissCam", profile, 120).total
        assert 1.25 < full / bliss < 1.7

    def test_segmentation_speedup(self, timing, profile):
        """Paper: segmentation runs 7.7x faster on 10.8 % of the pixels."""
        full = timing.tracking_latency("NPU-Full", profile, 120)
        bliss = timing.tracking_latency("BlissCam", profile, 120)
        speedup = full.stages["segmentation"] / bliss.stages["segmentation"]
        assert 6.0 < speedup < 11.0

    def test_npu_full_near_15ms(self, timing, profile):
        """Sec. II-C: conventional trackers sit around 15 ms latency."""
        total = timing.tracking_latency("NPU-Full", profile, 120).total
        assert 12e-3 < total < 17e-3

    def test_exposure_reduction_small(self, timing, profile):
        """Paper: BlissCam shrinks exposure by only ~1.8 %."""
        reduction = timing.exposure_reduction("BlissCam", profile, 120)
        assert 0.0 < reduction < 0.06

    def test_exposure_dominates_all_variants(self, timing, profile):
        for variant in VARIANTS:
            lat = timing.tracking_latency(variant, profile, 120)
            assert lat.stages["exposure"] > 0.4 * lat.total

    def test_schedule_feasible_at_120(self, timing, profile):
        for variant in VARIANTS:
            assert timing.schedule_feasible(variant, profile, 120)

    def test_schedule_infeasible_at_extreme_fps(self, timing, profile):
        """NPU-Full's full-frame segmentation cannot keep up at 500 FPS."""
        assert not timing.schedule_feasible("NPU-Full", profile, 500)

    def test_blisscam_feasible_at_500(self, timing, profile):
        assert timing.schedule_feasible("BlissCam", profile, 500)

    def test_in_sensor_overhead_much_smaller_than_exposure(self, timing, profile):
        lat = timing.tracking_latency("BlissCam", profile, 120)
        assert lat.in_sensor_overhead < 0.2 * lat.stages["exposure"]

    def test_bad_inputs_raise(self, timing, profile):
        with pytest.raises(ValueError):
            timing.tracking_latency("bogus", profile, 120)
        with pytest.raises(ValueError):
            timing.tracking_latency("BlissCam", profile, 0)
