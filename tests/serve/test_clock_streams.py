"""Virtual clock and client streams: determinism, spawns, arrivals."""

import numpy as np
import pytest

from repro.serve import (
    ClientStream,
    SERVE_STREAM_TAG,
    VirtualClock,
    build_streams,
    materialize_arrivals,
)
from repro.synth import DatasetConfig

CFG = DatasetConfig(height=16, width=16, frames_per_sequence=4)


class TestVirtualClock:
    def test_ticks_and_seconds(self):
        clock = VirtualClock.for_fps(100.0)
        assert clock.tick == 0 and clock.now_s == 0.0
        clock.advance()
        clock.advance()
        assert clock.tick == 2
        assert clock.now_s == pytest.approx(0.02)
        assert clock.seconds(5) == pytest.approx(0.05)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            VirtualClock.for_fps(0)
        with pytest.raises(ValueError):
            VirtualClock(tick_s=-1.0)


def _collect(stream, ticks):
    return [stream.poll(t) for t in range(ticks)]


class TestClientStream:
    def test_same_seed_same_frames(self):
        a = _collect(ClientStream(3, CFG, seed=7), 6)
        b = _collect(ClientStream(3, CFG, seed=7), 6)
        for x, y in zip(a, b):
            assert (x is None) == (y is None)
            if x is not None:
                np.testing.assert_array_equal(x.frame, y.frame)
                np.testing.assert_array_equal(x.gaze_true, y.gaze_true)

    def test_clients_are_distinct_subjects(self):
        a = ClientStream(0, CFG).poll(0)
        b = ClientStream(1, CFG).poll(0)
        assert not np.array_equal(a.frame, b.frame)

    def test_stream_independent_of_fleet(self):
        # The per-client spawn keys make a client's frames identical
        # whether it is built alone or inside a fleet.
        alone = _collect(ClientStream(2, CFG, seed=5), 4)
        fleet = build_streams(CFG, [0, 1, 2, 3], seed=5)
        in_fleet = _collect(fleet[2], 4)
        for x, y in zip(alone, in_fleet):
            np.testing.assert_array_equal(x.frame, y.frame)

    def test_namespaced_away_from_dataset_sequences(self):
        from repro.synth import SyntheticEyeDataset

        seq = SyntheticEyeDataset(CFG)[0]
        arrival = ClientStream(0, CFG, seed=CFG.seed).poll(0)
        assert not np.array_equal(arrival.frame, seq.frames[0])
        assert SERVE_STREAM_TAG != 0

    def test_uniform_arrives_every_tick(self):
        arrivals = _collect(ClientStream(0, CFG, arrival="uniform"), 5)
        assert all(a is not None for a in arrivals)
        assert [a.frame_index for a in arrivals] == list(range(5))
        assert [a.tick for a in arrivals] == list(range(5))

    def test_poisson_gaps_at_least_one_tick(self):
        arrivals = _collect(ClientStream(0, CFG, arrival="poisson", seed=3), 40)
        ticks = [a.tick for a in arrivals if a is not None]
        assert ticks, "poisson stream produced nothing in 40 ticks"
        assert all(b - a >= 1 for a, b in zip(ticks, ticks[1:]))
        # Deterministic: the same seed re-produces the arrival pattern.
        again = _collect(ClientStream(0, CFG, arrival="poisson", seed=3), 40)
        assert [a.tick for a in again if a is not None] == ticks

    def test_poisson_eye_trace_matches_uniform(self):
        # The arrival process draws from its own spawn, so the *eye
        # trace* is invariant to it: a frame that does arrive shows the
        # same gaze uniform would have emitted at that tick.  (The noisy
        # pixels differ — the noise stream advances per rendered frame.)
        clean = CFG.__class__(
            height=16, width=16, frames_per_sequence=4, apply_noise=False
        )
        uniform = _collect(ClientStream(0, clean, arrival="uniform", seed=3), 20)
        poisson = _collect(ClientStream(0, clean, arrival="poisson", seed=3), 20)
        for tick, arrival in enumerate(poisson):
            if arrival is not None:
                np.testing.assert_array_equal(
                    arrival.gaze_true, uniform[tick].gaze_true
                )
                np.testing.assert_array_equal(
                    arrival.frame, uniform[tick].frame
                )

    def test_trace_gates_blinks(self):
        blinky = DatasetConfig(
            height=16,
            width=16,
            frames_per_sequence=4,
            dynamics=CFG.dynamics.__class__(blink_rate_hz=30.0),
        )
        found_gap = False
        for seed in range(8):
            arrivals = _collect(
                ClientStream(0, blinky, arrival="trace", seed=seed), 30
            )
            assert all(
                not a.in_blink for a in arrivals if a is not None
            ), "trace stream emitted a mid-blink frame"
            found_gap = found_gap or any(a is None for a in arrivals)
        assert found_gap, "30 Hz blinks never gated a frame in 8 streams"

    def test_polls_must_be_consecutive(self):
        stream = ClientStream(0, CFG)
        stream.poll(0)
        with pytest.raises(ValueError, match="consecutive"):
            stream.poll(5)

    def test_unknown_arrival_rejected(self):
        with pytest.raises(ValueError):
            ClientStream(0, CFG, arrival="bursty")


class TestMaterialize:
    def test_groups_by_tick_in_client_order(self):
        streams = build_streams(CFG, [4, 1, 7])
        arrivals = materialize_arrivals(streams, 3)
        assert len(arrivals) == 3
        for row in arrivals:
            assert [a.client_id for a in row] == [4, 1, 7]

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            materialize_arrivals([], -1)
