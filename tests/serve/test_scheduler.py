"""Scheduler semantics: admission, deadline shedding, batching, telemetry.

Uses a stub stage graph (no trained tracker) so the queueing behaviour
is tested in isolation and fast; the end-to-end serving path over the
real tracking graph is covered by ``test_parity.py`` and the API tests.
"""

import numpy as np
import pytest

from repro.engine import Stage, StageGraph
from repro.engine.context import SequenceState
from repro.serve import FrameArrival, Scheduler, SLOModel, Telemetry


class EchoStage(Stage):
    """Predicts gaze = (client_id, frame_index); counts batch calls."""

    name = "echo"

    def __init__(self):
        self.batch_sizes: list[int] = []

    def process(self, ctx, seq):
        ctx.gaze_pred = (float(ctx.seq_index), float(ctx.t))

    def process_batch(self, ctxs, seqs):
        self.batch_sizes.append(len(ctxs))
        for ctx, seq in zip(ctxs, seqs):
            self.process(ctx, seq)


def arrival(client_id: int, tick: int, frame_index: int = 0) -> FrameArrival:
    return FrameArrival(
        client_id=client_id,
        tick=tick,
        frame_index=frame_index,
        frame=np.zeros((4, 4)),
        gaze_true=np.zeros(2),
        in_blink=False,
        in_saccade=False,
    )


def slo(policy: str = "drop", slack: int = 1) -> SLOModel:
    return SLOModel(
        tick_s=0.01, service_s=0.005, slack_ticks=slack, policy=policy
    )


def run(scheduler, arrivals_by_tick, model=None):
    model = model or scheduler.slo
    telemetry = Telemetry(
        tick_s=model.tick_s,
        deadline_s=model.deadline_s,
        duration_ticks=len(arrivals_by_tick),
    )
    log = scheduler.run(arrivals_by_tick, telemetry)
    return telemetry, log


class TestSLOModel:
    def test_deadline_arithmetic(self):
        model = slo(slack=2)
        assert model.deadline_s == pytest.approx(0.025)
        assert model.latency_s(3) == pytest.approx(0.035)
        assert model.meets_deadline(2) and not model.meets_deadline(3)
        assert model.sheds(3) and not model.sheds(2)
        assert not slo("best_effort").sheds(99)

    def test_from_hardware_uses_timing_model(self):
        from repro.hardware import TimingModel, WorkloadProfile

        model = SLOModel.from_hardware(fps=120.0)
        expected = TimingModel().tracking_latency(
            "BlissCam", WorkloadProfile(), 120.0
        )
        assert model.service_s == pytest.approx(expected.total)
        assert model.tick_s == pytest.approx(1 / 120.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            slo("sometimes")
        with pytest.raises(ValueError):
            slo(slack=-1)


class TestDispatch:
    def test_all_due_frames_form_one_micro_batch(self):
        stage = EchoStage()
        scheduler = Scheduler(StageGraph([stage]), SequenceState, slo())
        telemetry, log = run(
            scheduler, [[arrival(c, 0, 0) for c in range(5)]]
        )
        assert stage.batch_sizes == [5]
        assert log == [(c, 0, (float(c), 0.0)) for c in range(5)]
        assert telemetry.summary()["frames"]["completed"] == 5

    def test_max_batch_caps_per_tick_service(self):
        stage = EchoStage()
        scheduler = Scheduler(
            StageGraph([stage]), SequenceState, slo(slack=9), max_batch=2
        )
        ticks = [[arrival(c, 0, 0) for c in range(5)], [], []]
        telemetry, _ = run(scheduler, ticks)
        assert stage.batch_sizes == [2, 2, 1]
        assert telemetry.queue_depths == [3, 1, 0]

    def test_scalar_dispatch_matches_batched(self):
        ticks = lambda: [
            [arrival(c, t, t) for c in range(3)] for t in range(2)
        ]
        batched = Scheduler(
            StageGraph([EchoStage()]), SequenceState, slo()
        )
        scalar = Scheduler(
            StageGraph([EchoStage()]), SequenceState, slo(), micro_batch=False
        )
        _, log_b = run(batched, ticks())
        _, log_s = run(scalar, ticks())
        assert log_b == log_s

    def test_queue_capacity_drops_admissions(self):
        scheduler = Scheduler(
            StageGraph([EchoStage()]),
            SequenceState,
            slo(),
            max_batch=1,
            queue_capacity=2,
        )
        telemetry, _ = run(scheduler, [[arrival(c, 0, 0) for c in range(5)]])
        summary = telemetry.summary()
        # 5 arrive: 2 admitted, 3 dropped at admission; 1 of the 2 served.
        assert summary["drops_by_reason"] == {"queue_full": 3}
        assert summary["frames"]["completed"] == 1
        assert summary["queue_depth"]["trace"] == [1]

    def test_drop_policy_sheds_doomed_frames(self):
        scheduler = Scheduler(
            StageGraph([EchoStage()]),
            SequenceState,
            slo(slack=0),
            max_batch=1,
        )
        # Two frames arrive at tick 0; capacity 1/tick; zero slack: the
        # queued one is doomed by tick 1 and must be shed, not served.
        telemetry, log = run(
            scheduler, [[arrival(0, 0, 0), arrival(1, 0, 0)], []]
        )
        summary = telemetry.summary()
        assert summary["drops_by_reason"] == {"deadline": 1}
        assert [cid for cid, _, _ in log] == [0]

    def test_best_effort_serves_late_and_records_miss(self):
        scheduler = Scheduler(
            StageGraph([EchoStage()]),
            SequenceState,
            slo("best_effort", slack=0),
            max_batch=1,
        )
        telemetry, log = run(
            scheduler, [[arrival(0, 0, 0), arrival(1, 0, 0)], []]
        )
        summary = telemetry.summary()
        assert summary["frames"]["dropped"] == 0
        assert len(log) == 2
        assert summary["deadline_met"] == 1
        assert summary["deadline_miss_rate"] == pytest.approx(0.5)
        # The late frame's latency includes its one-tick queue wait.
        assert summary["latency_ms"]["max"] == pytest.approx(15.0)

    def test_per_client_state_isolated(self):
        class Accumulate(Stage):
            name = "acc"

            def process(self, ctx, seq):
                seq.slots["n"] = seq.slots.get("n", 0) + 1
                ctx.gaze_pred = (float(ctx.seq_index), float(seq.slots["n"]))

        scheduler = Scheduler(StageGraph([Accumulate()]), SequenceState, slo())
        ticks = [[arrival(c, t, t) for c in range(2)] for t in range(3)]
        _, log = run(scheduler, ticks)
        # Each client's counter advances only on its own frames.
        for cid in (0, 1):
            counts = [g[1] for c, _, g in log if c == cid]
            assert counts == [1.0, 2.0, 3.0]

    def test_end_of_run_backlog_counted(self):
        # 5 frames arrive, 1 served per tick over 2 ticks, generous
        # slack: 3 are still queued at the end — they must show up as
        # backlog in 'arrived' (not vanish, not count as drops).
        scheduler = Scheduler(
            StageGraph([EchoStage()]), SequenceState, slo(slack=99),
            max_batch=1,
        )
        telemetry, _ = run(
            scheduler, [[arrival(c, 0, 0) for c in range(5)], []]
        )
        summary = telemetry.summary()
        assert summary["frames"] == {
            "arrived": 5,
            "processed": 2,
            "completed": 2,
            "bootstrap": 0,
            "dropped": 0,
            "backlog": 3,
        }
        assert summary["drop_rate"] == 0.0
        assert summary["per_client"]["4"]["arrived"] == 1
        assert summary["per_client"]["4"]["completed"] == 0

    def test_validation(self):
        graph = StageGraph([EchoStage()])
        with pytest.raises(ValueError):
            Scheduler(graph, SequenceState, slo(), max_batch=0)
        with pytest.raises(ValueError):
            Scheduler(graph, SequenceState, slo(), queue_capacity=0)


class TestServeScenario:
    def test_matches_spec_section_fields_and_defaults(self):
        # ServeScenario is the library-level twin of the spec's
        # execution.serve section; names and defaults must not drift.
        import dataclasses

        from repro.api.spec import ServeSection
        from repro.serve import ServeScenario

        scenario_fields = {
            f.name: f.default for f in dataclasses.fields(ServeScenario)
        }
        section_fields = {
            f.name: f.default for f in dataclasses.fields(ServeSection)
        }
        assert scenario_fields == section_fields

    def test_mirrors_spec_validation(self):
        from repro.serve import ServeScenario

        for kwargs in (
            {"num_clients": 0},
            {"duration_ticks": 1},
            {"max_batch": 0},
            {"queue_capacity": 0},
            {"deadline_slack_ticks": -1},
        ):
            with pytest.raises(ValueError):
                ServeScenario(**kwargs)


class TestTelemetry:
    def test_merge_requires_same_scenario(self):
        a = Telemetry(0.01, 0.02, 4)
        b = Telemetry(0.01, 0.02, 5)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_sums_queue_depths_and_is_order_insensitive(self):
        def part(cids):
            scheduler = Scheduler(
                StageGraph([EchoStage()]), SequenceState, slo()
            )
            return run(
                scheduler, [[arrival(c, 0, 0) for c in cids]]
            )[0]

        whole = part([0, 1, 2, 3]).summary()
        ab, cd = part([0, 1]), part([2, 3])
        ab.merge(cd)
        assert ab.summary() == whole
        dc, ba = part([2, 3]), part([0, 1])
        dc.merge(ba)
        assert dc.summary() == whole

    def test_empty_summary_has_null_latencies(self):
        summary = Telemetry(0.01, 0.02, 0).summary()
        assert summary["latency_ms"]["p50"] is None
        assert summary["frames"]["arrived"] == 0
        assert summary["drop_rate"] == 0.0
