"""Serving parity: micro-batching and sharding never change results.

The load-bearing guarantees of ``repro.serve``, pinned over the *real*
trained tracking graph:

* serving a client inside a multiplexed fleet is bitwise-identical to
  serving that client alone (per-client state + RNG spawns isolated);
* cross-client micro-batched dispatch is bitwise-identical to per-client
  scalar dispatch (the engine's batch-invariance contract);
* partitioning the fleet into scheduler replicas (workers >= 2) changes
  neither per-client results nor, for an uncontended fleet, the merged
  telemetry summary;
* the whole simulation is deterministic: same scenario, same bytes.
"""

import json

import pytest

from repro.api import ExperimentSpec, Session
from repro.serve import ClientSensorFactory, ServeScenario, simulate_serving

TINY = {
    "workload": "serve",
    "dataset": {"num_sequences": 3, "frames_per_sequence": 6},
    "training": {"train_indices": [0, 1], "epochs": 1},
}

SCENARIO = ServeScenario(num_clients=4, duration_ticks=6)


@pytest.fixture(scope="module")
def serving():
    """(graph, state factory, dataset config) of a tiny trained tracker."""
    spec = ExperimentSpec.from_dict(TINY)
    with Session() as session:
        pipeline = session.pipeline(spec)
    graph, template = pipeline.tracking_setup()
    factory = ClientSensorFactory(template, spec.sensor.sensor_seed)
    return graph, factory, pipeline.config.dataset


def serve(serving, **kwargs):
    graph, factory, dataset_cfg = serving
    return simulate_serving(
        graph=graph,
        state_factory=factory,
        dataset_cfg=dataset_cfg,
        scenario=kwargs.pop("scenario", SCENARIO),
        **kwargs,
    )


def test_multiplexed_equals_each_client_alone(serving):
    fleet = serve(serving)
    alone = []
    for client_id in range(SCENARIO.num_clients):
        alone.extend(serve(serving, client_ids=[client_id]).gaze_log)
    assert sorted(fleet.gaze_log) == sorted(alone)
    assert len(fleet.gaze_log) > 0


def test_micro_batched_equals_scalar_dispatch(serving):
    batched = serve(serving, micro_batch=True)
    scalar = serve(serving, micro_batch=False)
    assert batched.gaze_log == scalar.gaze_log
    # Telemetry must match byte-for-byte, not just structurally: the
    # summary is the serialized serving scorecard CI diffs across hosts.
    assert json.dumps(batched.telemetry.summary(), sort_keys=True) == json.dumps(
        scalar.telemetry.summary(), sort_keys=True
    )


def test_micro_batch_dispatch_has_no_per_row_stage(serving):
    """Every stage of the served tracking graph — the gaze regression
    included, historically the last per-row holdout — must expose a real
    batched kernel, so the scheduler's micro-batch dispatch never falls
    back to the base-class loop."""
    from repro.engine.stage import Stage

    graph, _, _ = serving
    for stage in graph.stages:
        assert type(stage).process_batch is not Stage.process_batch, (
            type(stage).__name__
        )


def test_replica_partitioning_preserves_results(serving):
    single = serve(serving)
    with Session() as session:
        sharded = serve(
            serving, workers=2, executor=session.executor(2)
        )
    assert sharded.workers == 2
    assert sorted(sharded.gaze_log) == sorted(single.gaze_log)
    # Uncontended fleet (no queueing interaction): merged replica
    # telemetry summarizes byte-identically to one scheduler.
    assert json.dumps(sharded.summary, sort_keys=True) == json.dumps(
        single.summary, sort_keys=True
    )


def test_deterministic_telemetry_bytes(serving):
    a = json.dumps(serve(serving).summary, sort_keys=True)
    b = json.dumps(serve(serving).summary, sort_keys=True)
    assert a == b


def test_overload_drops_and_queues(serving):
    scenario = ServeScenario(
        num_clients=4,
        duration_ticks=6,
        max_batch=2,
        queue_capacity=3,
        deadline_policy="drop",
    )
    summary = serve(serving, scenario=scenario).summary
    assert summary["frames"]["dropped"] > 0
    assert summary["drop_rate"] > 0
    assert summary["queue_depth"]["max"] > 0
    assert set(summary["drops_by_reason"]) <= {"queue_full", "deadline"}
