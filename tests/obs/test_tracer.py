"""Tracer unit behaviour: spans, planes, merge, the ambient guard."""

import json
import threading

import pytest

from repro.obs import (
    TRACE_FORMAT_VERSION,
    SpanRecord,
    Tracer,
    capture_job,
    current_tracer,
    finish_wall,
    install_tracer,
    read_spool,
    read_trace,
)


class TestSpans:
    def test_span_nesting_sets_parents(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.parent is None
        assert inner.parent == outer.id
        assert [s.name for s in tracer.spans] == ["outer", "inner"]

    def test_point_defaults_to_innermost_open_span(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            view = tracer.point("view", wall_dur=0.25, stage="warp")
        assert view.parent == outer.id
        assert view.attrs == {"stage": "warp"}
        assert view.wall["dur_s"] == 0.25

    def test_point_accepts_span_record_parent(self):
        tracer = Tracer()
        anchor = tracer.point("anchor")
        child = tracer.point("child", parent=anchor)
        assert child.parent == anchor.id

    def test_max_spans_cap_counts_drops(self):
        tracer = Tracer(max_spans=2)
        assert tracer.point("a") is not None
        assert tracer.point("b") is not None
        assert tracer.point("c") is None
        assert tracer.point("d") is None
        assert tracer.dropped == 2
        # The span contextmanager degrades to a no-op, not a crash.
        with tracer.span("e") as record:
            assert record is None
        assert tracer.dropped == 3

    def test_finish_wall_touches_only_the_wall_dict(self):
        record = SpanRecord(
            id=1, parent=None, name="x", attrs={"k": 1},
            wall={"start_s": 0.0},
        )
        finish_wall(record)
        assert "dur_s" in record.wall
        assert record.attrs == {"k": 1}
        # Idempotent: a second finish must not rewrite the duration.
        dur = record.wall["dur_s"]
        finish_wall(record)
        assert record.wall["dur_s"] == dur

    def test_invalid_detail_rejected(self):
        with pytest.raises(ValueError, match="detail"):
            Tracer(detail="verbose")


class TestCountersAndGauges:
    def test_counters_fold_and_export_sorted(self):
        tracer = Tracer()
        tracer.count("z.thing")
        tracer.count("a.thing", 2)
        tracer.count("z.thing", 3)
        records = tracer.to_records()
        counters = [r for r in records if r["type"] == "counter"]
        assert counters == [
            {"type": "counter", "name": "a.thing", "value": 2},
            {"type": "counter", "name": "z.thing", "value": 4},
        ]

    def test_gauges_keep_sample_order(self):
        tracer = Tracer()
        tracer.gauge("depth", 3, tick=0)
        tracer.gauge("depth", 1, tick=1)
        gauges = [r for r in tracer.to_records() if r["type"] == "gauge"]
        assert [g["value"] for g in gauges] == [3, 1]
        assert [g["attrs"]["tick"] for g in gauges] == [0, 1]


class TestMerge:
    def _capture(self):
        worker = Tracer(origin="worker-test")
        with worker.span("job.outer"):
            with worker.span("job.inner"):
                pass
        worker.count("jobs.done", 1)
        worker.gauge("job.depth", 2)
        return worker.to_records()

    def test_merge_remaps_ids_and_reparents_roots(self):
        main = Tracer()
        anchor = main.point("executor.job", seq=0)
        merged = main.merge_records(self._capture(), parent=anchor)
        assert merged == 2
        outer, inner = main.spans[1], main.spans[2]
        assert outer.name == "job.outer" and outer.parent == anchor.id
        assert inner.name == "job.inner" and inner.parent == outer.id
        # Remapped ids continue the main tracer's sequence, no collisions.
        assert len({s.id for s in main.spans}) == 3

    def test_merge_folds_counters_gauges_and_drops(self):
        main = Tracer()
        main.count("jobs.done", 1)
        capture = self._capture()
        capture[0]["spans_dropped"] = 5  # worker hit its cap
        main.merge_records(capture, parent=None)
        assert main.counters["jobs.done"] == 2
        assert [g["name"] for g in main.gauges] == ["job.depth"]
        assert main.dropped == 5


class TestAmbientGuard:
    def test_install_and_restore(self):
        assert current_tracer() is None
        tracer = Tracer()
        with install_tracer(tracer):
            assert current_tracer() is tracer
            nested = Tracer()
            with install_tracer(nested):
                assert current_tracer() is nested
            assert current_tracer() is tracer
        assert current_tracer() is None

    def test_sibling_thread_sees_none(self):
        seen = []
        with install_tracer(Tracer()):
            thread = threading.Thread(
                target=lambda: seen.append(current_tracer())
            )
            thread.start()
            thread.join()
        assert seen == [None]


class TestJsonlRoundtrip:
    def test_write_read_roundtrip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("run", workload="evaluate"):
            tracer.count("frames", 7)
        path = tmp_path / "sub" / "trace.jsonl"
        nbytes = tracer.write_jsonl(path)
        assert nbytes == path.stat().st_size
        assert tracer.sink_bytes == nbytes
        records = read_trace(path)
        assert records[0]["type"] == "meta"
        assert records[0]["format"] == TRACE_FORMAT_VERSION
        assert records[0]["spans"] == 1
        names = [r["name"] for r in records if r["type"] == "span"]
        assert names == ["run"]

    def test_stats_shape(self):
        tracer = Tracer()
        tracer.point("a")
        tracer.count("c")
        tracer.gauge("g", 1)
        assert tracer.stats() == {
            "spans": 1,
            "spans_dropped": 0,
            "counters": 1,
            "gauges": 1,
            "sink_bytes": 0,
        }


def _spooled_job(x, y=1):
    tracer = current_tracer()
    assert tracer is not None, "capture tracer must be ambient in the job"
    with tracer.span("job.work", x=x):
        pass
    return x + y


def _failing_job():
    tracer = current_tracer()
    tracer.point("job.before_failure")
    raise RuntimeError("boom")


class TestSpool:
    def test_capture_job_spools_and_returns(self, tmp_path):
        spool = tmp_path / "0.spans"
        result = capture_job(spool, _spooled_job, (2,), {"y": 3})
        assert result == 5
        records = read_spool(spool)
        assert records[0]["type"] == "meta"
        assert [r["name"] for r in records if r["type"] == "span"] == [
            "job.work"
        ]
        # The capture never leaks into this process's ambient slot.
        assert current_tracer() is None

    def test_capture_job_spools_even_on_failure(self, tmp_path):
        spool = tmp_path / "0.spans"
        with pytest.raises(RuntimeError, match="boom"):
            capture_job(spool, _failing_job, (), {})
        names = [
            r["name"] for r in read_spool(spool) if r["type"] == "span"
        ]
        assert names == ["job.before_failure"]

    def test_spool_line_format_is_sorted_json(self, tmp_path):
        spool = tmp_path / "0.spans"
        capture_job(spool, _spooled_job, (1,), {})
        for line in spool.read_text().splitlines():
            assert line == json.dumps(json.loads(line), sort_keys=True)
