"""Traced runs end to end: session wiring, gauges, determinism.

The determinism pins here are the PR's acceptance contract: two
identical traced runs (fresh state each) must produce byte-identical
deterministic planes, including the cross-process file_queue merge.
"""

import pytest

from repro.api import ExperimentSpec, Session
from repro.obs import Tracer, deterministic_bytes, read_trace

#: Cheapest spec that trains + evaluates.
TINY = {
    "workload": "evaluate",
    "dataset": {"num_sequences": 3, "frames_per_sequence": 6},
    "training": {"epochs": 1},
}

#: Small sweep that fans per-strategy jobs across a sharded executor —
#: the cross-process spool/merge path under test.
SWEEP_SHARDED = {
    "workload": "strategy_sweep",
    "dataset": {
        "num_sequences": 3,
        "frames_per_sequence": 6,
        "dynamics": "lively",
    },
    "strategy": {"names": ["ROI+DS", "Ours (ROI+Random)"], "train_epochs": 1},
    "training": {"train_indices": [0, 1]},
    "execution": {
        "eval_indices": [2],
        "backend": "file_queue",
        "workers": 2,
    },
}

SERVE_TINY = {
    "workload": "serve",
    "dataset": {
        "num_sequences": 3,
        "frames_per_sequence": 8,
        "dynamics": "lively",
    },
    "training": {"train_indices": [0, 1], "epochs": 1},
    "execution": {"serve": {"num_clients": 2, "duration_ticks": 4}},
}


def _span_names(records):
    return [r["name"] for r in records if r.get("type") == "span"]


def _counters(records):
    return {
        r["name"]: r["value"]
        for r in records
        if r.get("type") == "counter"
    }


class TestSessionWiring:
    def test_untraced_run_has_no_trace_provenance(self):
        with Session() as session:
            result = session.run(ExperimentSpec.from_dict(TINY))
        assert "trace" not in result.provenance
        assert session.stats()["trace"]["spans"] == 0

    def test_session_trace_path_writes_sink(self, tmp_path):
        sink = tmp_path / "run.jsonl"
        with Session(trace=sink) as session:
            result = session.run(ExperimentSpec.from_dict(TINY))
        info = result.provenance["trace"]
        assert info["path"] == str(sink)
        assert info["spans"] > 0
        assert sink.stat().st_size == info["sink_bytes"]
        records = read_trace(sink)
        names = _span_names(records)
        assert names[0] == "session.run"
        assert "train.epoch" in names
        assert "engine.stage" in names
        assert session.stats()["trace"]["spans"] == info["spans"]

    def test_spec_enabled_trace_uses_spec_sink(self, tmp_path):
        sink = tmp_path / "spec-sink.jsonl"
        spec = ExperimentSpec.from_dict(TINY).with_trace(sink=str(sink))
        with Session() as session:
            result = session.run(spec)
        assert result.provenance["trace"]["path"] == str(sink)
        assert sink.exists()

    def test_injected_tracer_records_without_sink(self):
        tracer = Tracer()
        with Session(trace=tracer) as session:
            result = session.run(ExperimentSpec.from_dict(TINY))
        assert "path" not in result.provenance["trace"]
        assert len(tracer.spans) == result.provenance["trace"]["spans"]

    def test_trace_section_is_hash_exempt(self, tmp_path):
        spec = ExperimentSpec.from_dict(TINY)
        traced = spec.with_trace(sink=str(tmp_path / "t.jsonl"))
        assert spec.spec_hash() == traced.spec_hash()

    def test_trace_spec_validation(self):
        with pytest.raises(Exception, match="execution.trace.sink"):
            ExperimentSpec.from_dict(
                {
                    **TINY,
                    "execution": {"trace": {"enabled": True, "sink": ""}},
                }
            )


class TestServeGauges:
    def test_queue_depth_gauges_and_serve_counters(self, tmp_path):
        sink = tmp_path / "serve.jsonl"
        with Session(trace=sink) as session:
            session.run(ExperimentSpec.from_dict(SERVE_TINY))
        records = read_trace(sink)
        gauge_names = {
            r["name"] for r in records if r.get("type") == "gauge"
        }
        # Per-tick series from the scheduler, roll-ups from the
        # workload — both built from the repro.obs.names table.
        assert "serve.queue_depth" in gauge_names
        assert "serve.queue_depth.max" in gauge_names
        assert "serve.queue_depth.mean" in gauge_names
        counters = _counters(records)
        assert counters["serve.ticks"] == 4
        assert "serve.tick" in _span_names(records)


class TestDeterminism:
    def _traced_run(self, spec_dict, sink):
        # A fresh Session per run: memoization or store hydration would
        # legitimately change run 2's span stream (fewer trainings, gets
        # instead of puts), which is not the drift under test.
        with Session(trace=sink) as session:
            session.run(ExperimentSpec.from_dict(spec_dict))
        return read_trace(sink)

    def test_identical_runs_identical_deterministic_planes(self, tmp_path):
        left = self._traced_run(TINY, tmp_path / "a.jsonl")
        right = self._traced_run(TINY, tmp_path / "b.jsonl")
        assert deterministic_bytes(left) == deterministic_bytes(right)
        # Sanity: the wall planes do differ (real time was measured).
        assert (tmp_path / "a.jsonl").read_bytes() != (
            tmp_path / "b.jsonl"
        ).read_bytes()

    def test_file_queue_merge_is_stable_and_reparented(self, tmp_path):
        left = self._traced_run(SWEEP_SHARDED, tmp_path / "a.jsonl")
        right = self._traced_run(SWEEP_SHARDED, tmp_path / "b.jsonl")
        assert deterministic_bytes(left) == deterministic_bytes(right)
        names = _span_names(left)
        assert "executor.job" in names
        counters = _counters(left)
        assert counters["executor.jobs"] == 2
        assert counters["executor.worker_spans_merged"] > 0
        # Every merged worker span hangs off a submit-side job anchor:
        # walking parents from any span reaches session.run, so the
        # cross-process trace is one tree.
        spans = {
            r["id"]: r for r in left if r.get("type") == "span"
        }
        roots = [r for r in spans.values() if r["parent"] is None]
        assert [r["name"] for r in roots] == ["session.run"]
        for record in spans.values():
            seen = set()
            node = record
            while node["parent"] is not None:
                assert node["id"] not in seen
                seen.add(node["id"])
                node = spans[node["parent"]]
            assert node["name"] == "session.run"

    def test_summary_detail_skips_per_tick_spans(self, tmp_path):
        sink = tmp_path / "summary.jsonl"
        spec = ExperimentSpec.from_dict(SERVE_TINY).with_trace(
            sink=str(sink), detail="summary"
        )
        with Session() as session:
            session.run(spec)
        records = read_trace(sink)
        names = _span_names(records)
        assert "serve.tick" not in names
        assert "session.run" in names
        # Counters survive the reduced detail level.
        assert _counters(records)["serve.ticks"] == 4
