"""Trace exporters and the ``repro trace`` CLI surface."""

import json

import pytest

from repro.obs import (
    TraceFormatError,
    Tracer,
    deterministic_bytes,
    deterministic_plane,
    perfetto_events,
    read_trace,
    summarize,
)
from repro.obs.cli import main as trace_main


def _sample_tracer() -> Tracer:
    tracer = Tracer()
    with tracer.span("session.run", workload="evaluate"):
        with tracer.span("engine.run", frames=6):
            tracer.point("engine.stage", wall_dur=0.5, stage="warp")
        tracer.count("engine.frames", 6)
        tracer.gauge("serve.queue_depth", 2, tick=0)
    return tracer


class TestDeterministicPlane:
    def test_strips_only_the_wall_key(self):
        records = _sample_tracer().to_records()
        plane = deterministic_plane(records)
        assert all("wall" not in record for record in plane)
        spans = [r for r in plane if r["type"] == "span"]
        assert {"id", "parent", "name", "attrs"} <= set(spans[0])

    def test_bytes_ignore_wall_values(self):
        left, right = _sample_tracer(), _sample_tracer()
        # Perturb the wall plane only: bytes must not move.
        for span in right.spans:
            span.wall["start_s"] = 123456.789
            span.wall["rss_kb"] = 999999
        assert deterministic_bytes(left.to_records()) == deterministic_bytes(
            right.to_records()
        )

    def test_bytes_see_attr_drift(self):
        left, right = _sample_tracer(), _sample_tracer()
        right.spans[1].attrs["frames"] = 7
        assert deterministic_bytes(left.to_records()) != deterministic_bytes(
            right.to_records()
        )


class TestReadTrace:
    def test_rejects_missing_meta(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "span", "id": 1}\n')
        with pytest.raises(TraceFormatError, match="meta"):
            read_trace(path)

    def test_rejects_other_format_versions(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text('{"type": "meta", "format": 99}\n')
        with pytest.raises(TraceFormatError, match="format"):
            read_trace(path)

    def test_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        path.write_text("not json\n")
        with pytest.raises(TraceFormatError, match="invalid"):
            read_trace(path)


class TestPerfetto:
    def test_spans_become_complete_events(self):
        payload = perfetto_events(_sample_tracer().to_records())
        spans = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        gauges = [e for e in payload["traceEvents"] if e["ph"] == "C"]
        assert {e["name"] for e in spans} == {
            "session.run", "engine.run", "engine.stage",
        }
        assert len(gauges) == 1
        stage = next(e for e in spans if e["name"] == "engine.stage")
        assert stage["dur"] == pytest.approx(0.5e6)
        assert stage["args"]["stage"] == "warp"
        assert "span_id" in stage["args"]


class TestSummarize:
    def test_rollup_counts_and_ordering(self):
        report = summarize(_sample_tracer().to_records(), top=2)
        assert report["spans_total"] == 3
        assert report["span_names"] == 3
        assert len(report["spans"]) == 2  # truncated to top
        assert report["counters"] == {"engine.frames": 6}
        assert report["gauges"]["serve.queue_depth"] == {
            "samples": 1, "min": 2, "max": 2,
        }


class TestTraceCli:
    @pytest.fixture()
    def trace_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        _sample_tracer().write_jsonl(path)
        return path

    def test_summary_ok_and_json(self, trace_file, tmp_path, capsys):
        out = tmp_path / "summary.json"
        code = trace_main(
            ["summary", str(trace_file), "--json", str(out)]
        )
        assert code == 0
        assert "session.run" in capsys.readouterr().out
        report = json.loads(out.read_text())
        assert report["spans_total"] == 3

    def test_summary_unreadable_exits_2(self, tmp_path, capsys):
        assert trace_main(["summary", str(tmp_path / "nope.jsonl")]) == 2
        assert "trace error" in capsys.readouterr().err

    def test_export_perfetto(self, trace_file, tmp_path):
        out = tmp_path / "perfetto.json"
        assert trace_main(
            ["export", str(trace_file), "--perfetto", str(out)]
        ) == 0
        payload = json.loads(out.read_text())
        assert payload["traceEvents"]

    def test_diff_identical_exits_0(self, trace_file, tmp_path, capsys):
        other = tmp_path / "other.jsonl"
        tracer = _sample_tracer()
        for span in tracer.spans:  # wall drift must not count as drift
            span.wall["start_s"] = 42.0
        tracer.write_jsonl(other)
        assert trace_main(["diff", str(trace_file), str(other)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_diff_drift_exits_1(self, trace_file, tmp_path, capsys):
        other = tmp_path / "other.jsonl"
        tracer = _sample_tracer()
        tracer.count("engine.frames", 1)  # deterministic-plane drift
        tracer.write_jsonl(other)
        assert trace_main(["diff", str(trace_file), str(other)]) == 1
        assert "differ" in capsys.readouterr().out

    def test_usage_error_exits_2(self):
        assert trace_main(["summary"]) == 2
