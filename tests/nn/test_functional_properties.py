"""Property-based tests for the numerical kernels in repro.nn.functional."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import functional as F

small_floats = st.floats(-10, 10, allow_nan=False, allow_infinity=False)


class TestSoftmax:
    @given(
        x=hnp.arrays(np.float64, hnp.array_shapes(min_dims=1, max_dims=3,
                                                  min_side=1, max_side=6),
                     elements=small_floats)
    )
    @settings(max_examples=40, deadline=None)
    def test_rows_sum_to_one(self, x):
        out = F.softmax(x)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, atol=1e-12)
        assert (out >= 0).all()

    @given(
        x=hnp.arrays(np.float64, (3, 5), elements=small_floats),
        shift=small_floats,
    )
    @settings(max_examples=30, deadline=None)
    def test_shift_invariance(self, x, shift):
        np.testing.assert_allclose(
            F.softmax(x), F.softmax(x + shift), atol=1e-10
        )

    def test_extreme_values_stable(self):
        x = np.array([[1e8, -1e8, 0.0]])
        out = F.softmax(x)
        assert np.isfinite(out).all()
        assert out[0, 0] == pytest.approx(1.0)

    @given(x=hnp.arrays(np.float64, (2, 4), elements=small_floats))
    @settings(max_examples=30, deadline=None)
    def test_log_softmax_consistency(self, x):
        np.testing.assert_allclose(
            np.exp(F.log_softmax(x)), F.softmax(x), atol=1e-10
        )


class TestIm2Col:
    @given(
        batch=st.integers(1, 2),
        channels=st.integers(1, 3),
        size=st.integers(4, 9),
        kernel=st.integers(1, 3),
        stride=st.integers(1, 2),
        padding=st.integers(0, 2),
    )
    @settings(max_examples=40, deadline=None)
    def test_col2im_is_adjoint_of_im2col(
        self, batch, channels, size, kernel, stride, padding
    ):
        """<im2col(x), y> == <x, col2im(y)> — the defining property used
        by the convolution backward pass."""
        rng = np.random.default_rng(0)
        x = rng.standard_normal((batch, channels, size, size))
        cols, oh, ow = F.im2col(x, kernel, stride, padding)
        y = rng.standard_normal(cols.shape)
        lhs = float(np.sum(cols * y))
        rhs = float(np.sum(x * F.col2im(y, x.shape, kernel, stride, padding)))
        assert lhs == pytest.approx(rhs, rel=1e-10, abs=1e-10)

    def test_known_unfold(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        cols, oh, ow = F.im2col(x, kernel=2, stride=2, padding=0)
        assert (oh, ow) == (2, 2)
        # First window is the top-left 2x2 block.
        np.testing.assert_array_equal(cols[0, :, 0], [0, 1, 4, 5])

    def test_invalid_geometry_raises(self):
        with pytest.raises(ValueError):
            F.conv_output_size(2, kernel=5, stride=1, padding=0)


class TestPatchify:
    @given(
        batch=st.integers(1, 2),
        channels=st.integers(1, 3),
        grid=st.integers(1, 4),
        patch=st.sampled_from([2, 4]),
    )
    @settings(max_examples=30, deadline=None)
    def test_roundtrip(self, batch, channels, grid, patch):
        size = grid * patch
        rng = np.random.default_rng(1)
        x = rng.standard_normal((batch, channels, size, size))
        tokens = F.patchify(x, patch)
        assert tokens.shape == (batch, grid * grid, channels * patch * patch)
        back = F.unpatchify(tokens, patch, channels, size, size)
        np.testing.assert_array_equal(back, x)

    def test_indivisible_raises(self):
        with pytest.raises(ValueError):
            F.patchify(np.zeros((1, 1, 10, 10)), patch=3)

    def test_unpatchify_validates(self):
        with pytest.raises(ValueError):
            F.unpatchify(np.zeros((1, 3, 16)), patch=4, channels=1,
                         height=8, width=8)


class TestOneHotAndGelu:
    @given(
        labels=hnp.arrays(np.int64, (3, 4), elements=st.integers(0, 4)),
    )
    @settings(max_examples=20, deadline=None)
    def test_one_hot_rows(self, labels):
        out = F.one_hot(labels, 5)
        assert out.shape == (3, 4, 5)
        np.testing.assert_array_equal(out.sum(axis=-1), 1.0)
        np.testing.assert_array_equal(out.argmax(axis=-1), labels)

    def test_one_hot_range_check(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([5]), 4)

    @given(x=hnp.arrays(np.float64, (20,), elements=st.floats(-5, 5)))
    @settings(max_examples=20, deadline=None)
    def test_gelu_grad_matches_numeric(self, x):
        eps = 1e-6
        numeric = (F.gelu(x + eps) - F.gelu(x - eps)) / (2 * eps)
        np.testing.assert_allclose(F.gelu_grad(x), numeric, atol=1e-6)

    def test_gelu_asymptotes(self):
        assert F.gelu(np.array([10.0]))[0] == pytest.approx(10.0, abs=1e-6)
        assert F.gelu(np.array([-10.0]))[0] == pytest.approx(0.0, abs=1e-6)

    def test_sigmoid_stable_at_extremes(self):
        out = F.sigmoid(np.array([-1000.0, 1000.0]))
        assert out[0] == 0.0 and out[1] == 1.0


class TestGreyMorphology:
    """The numpy morphology helpers replacing scipy on the training path."""

    def test_dilation_is_window_max(self):
        x = np.zeros((7, 7))
        x[3, 3] = 5.0
        out = F.grey_dilation(x, 3)
        assert out.shape == x.shape
        assert np.all(out[2:5, 2:5] == 5.0)
        assert np.all(out[0] == 0.0)

    def test_erosion_is_window_min(self):
        x = np.full((7, 7), 5.0)
        x[3, 3] = 1.0
        out = F.grey_erosion(x, 3)
        assert np.all(out[2:5, 2:5] == 1.0)
        assert np.all(out[0] == 5.0)

    def test_dilation_erosion_are_order_duals(self):
        rng = np.random.default_rng(0)
        x = rng.integers(0, 4, size=(12, 12)).astype(float)
        assert np.array_equal(F.grey_erosion(x, 5), -F.grey_dilation(-x, 5))

    def test_interior_matches_scipy_when_available(self):
        scipy_ndimage = pytest.importorskip("scipy.ndimage")
        rng = np.random.default_rng(1)
        x = rng.integers(0, 4, size=(16, 16)).astype(float)
        for size in (3, 5):
            pad = size // 2
            ours = F.grey_dilation(x, size)
            theirs = scipy_ndimage.grey_dilation(x, size=(size, size))
            # Border handling differs (edge vs reflect pad); the interior
            # — everything the cue augmentation cares about — is exact.
            assert np.array_equal(
                ours[pad:-pad, pad:-pad], theirs[pad:-pad, pad:-pad]
            )
            assert np.array_equal(
                F.grey_erosion(x, size)[pad:-pad, pad:-pad],
                scipy_ndimage.grey_erosion(x, size=(size, size))[
                    pad:-pad, pad:-pad
                ],
            )

    def test_even_or_nonpositive_window_rejected(self):
        with pytest.raises(ValueError):
            F.grey_dilation(np.zeros((4, 4)), 2)
        with pytest.raises(ValueError):
            F.grey_erosion(np.zeros((4, 4)), 0)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            F.grey_dilation(np.zeros((4, 4, 4)), 3)
