"""Tests for 8-bit quantization and checkpoint serialization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.nn.quantize import (
    dequantize_tensor,
    quantize_module,
    quantize_tensor,
)

RNG = np.random.default_rng(0)


class TestQuantizeTensor:
    def test_roundtrip_error_bounded_by_half_lsb(self):
        values = RNG.standard_normal(1000)
        codes, scale = quantize_tensor(values, bits=8)
        recon = dequantize_tensor(codes, scale)
        assert np.max(np.abs(values - recon)) <= scale / 2 + 1e-12

    def test_zero_tensor(self):
        codes, scale = quantize_tensor(np.zeros(10))
        assert np.all(codes == 0) and scale == 1.0

    def test_codes_fit_in_int8_range(self):
        values = RNG.standard_normal(500) * 100
        codes, _ = quantize_tensor(values, bits=8)
        assert codes.min() >= -128 and codes.max() <= 127

    @given(bits=st.integers(2, 16))
    @settings(max_examples=15, deadline=None)
    def test_more_bits_less_error(self, bits):
        values = RNG.standard_normal(200)
        codes, scale = quantize_tensor(values, bits=bits)
        recon = dequantize_tensor(codes, scale)
        # Error bound halves per extra bit.
        peak = np.max(np.abs(values))
        assert np.max(np.abs(values - recon)) <= peak / (2 ** (bits - 1) - 1)

    def test_rejects_one_bit(self):
        with pytest.raises(ValueError):
            quantize_tensor(np.ones(4), bits=1)


class TestQuantizeModule:
    def test_restore_originals(self):
        model = nn.Sequential(nn.Linear(8, 8, RNG), nn.ReLU(), nn.Linear(8, 4, RNG))
        x = RNG.standard_normal((3, 8))
        before = model(x)
        originals, stats = quantize_module(model)
        assert stats.tensors == 4  # two weights + two biases
        after_quant = model(x)
        assert not np.allclose(before, after_quant)  # quantization did something
        model.load_state_dict(originals)
        np.testing.assert_allclose(model(x), before)

    def test_int8_accuracy_gap_is_small(self):
        """The 8-bit NPU assumption: argmax predictions barely change."""
        from repro.segmentation import ViTConfig, ViTSegmenter

        vit = ViTSegmenter(
            ViTConfig(height=32, width=32, patch=8, dim=24, heads=3,
                      depth=1, decoder_depth=1),
            np.random.default_rng(1),
        )
        frame = RNG.random((32, 32))
        mask = RNG.random((32, 32)) < 0.3
        before = vit.predict(frame * mask, mask)
        quantize_module(vit, bits=8)
        after = vit.predict(frame * mask, mask)
        agreement = np.mean(before == after)
        assert agreement > 0.95


class TestSerialization:
    def test_checkpoint_roundtrip(self, tmp_path):
        model = nn.Sequential(nn.Linear(6, 6, RNG), nn.Tanh(), nn.Linear(6, 2, RNG))
        path = tmp_path / "model.npz"
        nn.save_checkpoint(model, path)
        clone = nn.Sequential(
            nn.Linear(6, 6, np.random.default_rng(9)),
            nn.Tanh(),
            nn.Linear(6, 2, np.random.default_rng(9)),
        )
        nn.load_checkpoint(clone, path)
        x = RNG.standard_normal((2, 6))
        np.testing.assert_allclose(model(x), clone(x))

    def test_load_rejects_mismatched_architecture(self, tmp_path):
        model = nn.Sequential(nn.Linear(4, 4, RNG))
        path = tmp_path / "m.npz"
        nn.save_checkpoint(model, path)
        other = nn.Sequential(nn.Linear(4, 4, RNG), nn.Linear(4, 2, RNG))
        with pytest.raises(KeyError):
            nn.load_checkpoint(other, path)

    def test_load_rejects_shape_mismatch(self):
        model = nn.Sequential(nn.Linear(4, 4, RNG))
        state = model.state_dict()
        bad = {k: np.zeros((2, 2)) for k in state}
        with pytest.raises(ValueError):
            model.load_state_dict(bad)

    def test_num_parameters(self):
        model = nn.Linear(10, 5, RNG)
        assert model.num_parameters() == 10 * 5 + 5


class TestParameterPickle:
    def test_grad_is_stripped_and_restored_as_zeros(self):
        # Parameters ship across process boundaries constantly (engine
        # shard workers, training epoch tasks); no consumer reads a
        # shipped gradient, so pickling drops it and unpickling restores
        # a fresh zero buffer of the right shape.
        import pickle

        import numpy as np

        from repro.nn.module import Parameter

        param = Parameter(np.arange(6.0).reshape(2, 3), name="w")
        param.grad[...] = 5.0
        clone = pickle.loads(pickle.dumps(param))
        assert np.array_equal(clone.data, param.data)
        assert clone.name == "w"
        assert clone.grad.shape == param.data.shape
        assert np.all(clone.grad == 0.0)
