"""Numerical gradient checks for every differentiable layer.

These are the load-bearing tests of the whole reproduction: if backprop is
wrong here, joint training (Sec. III-C) silently trains the wrong thing.
"""

import numpy as np
import pytest

from repro import nn

RNG = np.random.default_rng(0)


def numerical_grad(f, x, eps=1e-6):
    """Central-difference gradient of scalar-valued ``f`` at ``x``."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        f_plus = f()
        x[idx] = orig - eps
        f_minus = f()
        x[idx] = orig
        grad[idx] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return grad


def check_input_grad(module, x, atol=1e-6):
    """Compare analytic input gradient against central differences."""
    out = module(x)
    upstream = RNG.standard_normal(out.shape)
    module.zero_grad()
    analytic = module.backward(upstream)

    def loss():
        return float(np.sum(module(x) * upstream))

    numeric = numerical_grad(loss, x)
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=1e-4)


def check_param_grads(module, x, atol=1e-6):
    """Compare analytic parameter gradients against central differences."""
    out = module(x)
    upstream = RNG.standard_normal(out.shape)
    module.zero_grad()
    module(x)
    module.backward(upstream)
    analytic = {name: p.grad.copy() for name, p in module.named_parameters()}

    def loss():
        return float(np.sum(module(x) * upstream))

    for name, param in module.named_parameters():
        numeric = numerical_grad(loss, param.data)
        np.testing.assert_allclose(
            analytic[name], numeric, atol=atol, rtol=1e-4, err_msg=name
        )


class TestDense:
    def test_linear_input_grad(self):
        layer = nn.Linear(5, 4, RNG)
        check_input_grad(layer, RNG.standard_normal((3, 5)))

    def test_linear_param_grad(self):
        layer = nn.Linear(4, 3, RNG)
        check_param_grads(layer, RNG.standard_normal((2, 4)))

    def test_linear_3d_input(self):
        layer = nn.Linear(4, 6, RNG)
        check_input_grad(layer, RNG.standard_normal((2, 3, 4)))
        check_param_grads(layer, RNG.standard_normal((2, 3, 4)))

    def test_flatten_roundtrip(self):
        layer = nn.Flatten()
        x = RNG.standard_normal((2, 3, 4))
        out = layer(x)
        assert out.shape == (2, 12)
        assert layer.backward(out).shape == x.shape


class TestActivations:
    @pytest.mark.parametrize(
        "cls", [nn.ReLU, nn.GELU, nn.Sigmoid, nn.Tanh, nn.Identity, nn.LeakyReLU]
    )
    def test_input_grad(self, cls):
        layer = cls()
        # Offset away from ReLU kink for numerical stability.
        x = RNG.standard_normal((3, 5)) + 0.1 * np.sign(RNG.standard_normal((3, 5)))
        x[np.abs(x) < 1e-3] = 0.5
        check_input_grad(layer, x)


class TestConv:
    def test_conv2d_input_grad(self):
        layer = nn.Conv2d(2, 3, kernel_size=3, rng=RNG, stride=1, padding=1)
        check_input_grad(layer, RNG.standard_normal((2, 2, 5, 5)))

    def test_conv2d_param_grad(self):
        layer = nn.Conv2d(2, 2, kernel_size=3, rng=RNG, stride=2, padding=1)
        check_param_grads(layer, RNG.standard_normal((1, 2, 6, 6)))

    def test_depthwise_input_grad(self):
        layer = nn.DepthwiseConv2d(3, kernel_size=3, rng=RNG, padding=1)
        check_input_grad(layer, RNG.standard_normal((2, 3, 5, 5)))

    def test_depthwise_param_grad(self):
        layer = nn.DepthwiseConv2d(2, kernel_size=3, rng=RNG, padding=1)
        check_param_grads(layer, RNG.standard_normal((1, 2, 5, 5)))

    def test_maxpool_grad(self):
        layer = nn.MaxPool2d(2)
        x = RNG.standard_normal((2, 2, 4, 4))
        # Perturb to make the max unique so the subgradient is well defined.
        x += np.linspace(0, 0.01, x.size).reshape(x.shape)
        check_input_grad(layer, x)

    def test_avgpool_grad(self):
        layer = nn.AvgPool2d(2)
        check_input_grad(layer, RNG.standard_normal((2, 2, 4, 4)))

    def test_upsample_grad(self):
        layer = nn.UpsampleNearest2d(2)
        check_input_grad(layer, RNG.standard_normal((1, 2, 3, 3)))

    def test_conv_output_shape(self):
        layer = nn.Conv2d(1, 4, kernel_size=5, rng=RNG, stride=2, padding=2)
        out = layer(np.zeros((1, 1, 16, 16)))
        assert out.shape == (1, 4, 8, 8)


class TestNorm:
    def test_layernorm_grads(self):
        layer = nn.LayerNorm(6)
        check_input_grad(layer, RNG.standard_normal((2, 3, 6)), atol=1e-5)
        check_param_grads(layer, RNG.standard_normal((2, 3, 6)), atol=1e-5)

    def test_batchnorm_train_grads(self):
        layer = nn.BatchNorm2d(2)
        x = RNG.standard_normal((3, 2, 3, 3))
        out = layer(x)
        upstream = RNG.standard_normal(out.shape)
        layer.zero_grad()
        layer(x)
        analytic = layer.backward(upstream)

        def loss():
            return float(np.sum(layer(x) * upstream))

        # Running stats update each call, but the normalization itself uses
        # batch stats, so the numeric gradient of the *function* is valid.
        numeric = numerical_grad(loss, x)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5, rtol=1e-4)

    def test_batchnorm_eval_uses_running_stats(self):
        layer = nn.BatchNorm2d(2)
        x = RNG.standard_normal((4, 2, 3, 3)) * 3 + 1
        for _ in range(20):
            layer(x)
        layer.eval()
        out = layer(x)
        # Normalized output should be near zero-mean/unit-var per channel.
        assert abs(out.mean()) < 0.5


class TestAttention:
    def test_mha_input_grad(self):
        layer = nn.MultiHeadAttention(dim=8, heads=2, rng=RNG)
        check_input_grad(layer, RNG.standard_normal((2, 4, 8)), atol=1e-5)

    def test_mha_param_grad(self):
        layer = nn.MultiHeadAttention(dim=4, heads=2, rng=RNG)
        check_param_grads(layer, RNG.standard_normal((1, 3, 4)), atol=1e-5)

    def test_mha_key_mask_blocks_attention(self):
        layer = nn.MultiHeadAttention(dim=8, heads=2, rng=RNG)
        x = RNG.standard_normal((1, 5, 8))
        mask = np.array([[True, True, True, False, False]])
        out_masked = layer(x, key_mask=mask)
        x2 = x.copy()
        x2[0, 3:] = 100.0  # change masked tokens only
        out_masked2 = layer(x2, key_mask=mask)
        # Valid queries must be unaffected by masked keys' values... note the
        # masked tokens still produce query rows, so compare valid rows only.
        np.testing.assert_allclose(out_masked[0, :3], out_masked2[0, :3], atol=1e-8)

    def test_transformer_block_grads(self):
        block = nn.TransformerBlock(dim=8, heads=2, mlp_ratio=2.0, rng=RNG)
        check_input_grad(block, RNG.standard_normal((1, 3, 8)), atol=1e-5)

    def test_mha_rejects_bad_heads(self):
        with pytest.raises(ValueError):
            nn.MultiHeadAttention(dim=7, heads=2, rng=RNG)


class TestLosses:
    def test_cross_entropy_grad(self):
        loss_fn = nn.CrossEntropyLoss()
        logits = RNG.standard_normal((2, 3, 4))
        target = RNG.integers(0, 4, size=(2, 3))
        loss_fn.forward(logits, target)
        analytic = loss_fn.backward()

        def loss():
            return loss_fn.forward(logits, target)

        numeric = numerical_grad(loss, logits)
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_cross_entropy_mask_zeroes_grad(self):
        loss_fn = nn.CrossEntropyLoss()
        logits = RNG.standard_normal((1, 4, 3))
        target = RNG.integers(0, 3, size=(1, 4))
        mask = np.array([[True, False, True, False]])
        loss_fn.forward(logits, target, mask=mask)
        grad = loss_fn.backward()
        assert np.all(grad[0, 1] == 0) and np.all(grad[0, 3] == 0)
        assert np.any(grad[0, 0] != 0)

    def test_mse_grad(self):
        loss_fn = nn.MSELoss()
        pred = RNG.standard_normal((3, 4))
        target = RNG.standard_normal((3, 4))
        loss_fn.forward(pred, target)
        analytic = loss_fn.backward()

        def loss():
            return loss_fn.forward(pred, target)

        numeric = numerical_grad(loss, pred)
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_mse_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            nn.MSELoss().forward(np.zeros((2, 2)), np.zeros((2, 3)))


class TestSequentialAndDropout:
    def test_sequential_chain_grad(self):
        model = nn.Sequential(
            nn.Linear(4, 8, RNG), nn.ReLU(), nn.Linear(8, 2, RNG)
        )
        x = RNG.standard_normal((3, 4)) + 0.3
        check_input_grad(model, x)

    def test_dropout_eval_is_identity(self):
        layer = nn.Dropout(0.5, RNG)
        layer.eval()
        x = RNG.standard_normal((4, 4))
        np.testing.assert_array_equal(layer(x), x)

    def test_dropout_train_scales(self):
        layer = nn.Dropout(0.5, np.random.default_rng(1))
        x = np.ones((200, 200))
        out = layer(x)
        # Inverted dropout keeps expectation ~1.
        assert abs(out.mean() - 1.0) < 0.05

    def test_residual_grad(self):
        block = nn.Residual(nn.Linear(4, 4, RNG))
        check_input_grad(block, RNG.standard_normal((2, 4)))
