"""Tests for the geometric eye model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synth import EyeGeometry, EyeState


class TestPupilGeometry:
    def test_neutral_gaze_is_centered(self):
        geo = EyeGeometry()
        row, col = geo.pupil_center(0.0, 0.0)
        assert row == pytest.approx(geo.center[0])
        assert col == pytest.approx(geo.center[1])

    def test_horizontal_gaze_moves_column(self):
        geo = EyeGeometry()
        _, col_right = geo.pupil_center(10.0, 0.0)
        _, col_left = geo.pupil_center(-10.0, 0.0)
        assert col_right > geo.center[1] > col_left

    def test_vertical_gaze_moves_row(self):
        geo = EyeGeometry()
        row_up, _ = geo.pupil_center(0.0, 10.0)
        row_down, _ = geo.pupil_center(0.0, -10.0)
        # Looking up -> pupil appears higher in the image (smaller row).
        assert row_up < geo.center[0] < row_down

    @given(
        gaze_h=st.floats(-25, 25),
        gaze_v=st.floats(-25, 25),
    )
    @settings(max_examples=50, deadline=None)
    def test_gaze_roundtrip(self, gaze_h, gaze_v):
        """pupil_center and gaze_from_pupil are exact inverses."""
        geo = EyeGeometry()
        row, col = geo.pupil_center(gaze_h, gaze_v)
        back_h, back_v = geo.gaze_from_pupil(row, col)
        assert back_h == pytest.approx(gaze_h, abs=1e-9)
        assert back_v == pytest.approx(gaze_v, abs=1e-9)

    def test_foreshortening_is_one_at_neutral(self):
        geo = EyeGeometry()
        fv, fh = geo.foreshortening(0.0, 0.0)
        assert fv == pytest.approx(1.0)
        assert fh == pytest.approx(1.0)

    def test_foreshortening_shrinks_with_eccentricity(self):
        geo = EyeGeometry()
        fv, fh = geo.foreshortening(20.0, 15.0)
        assert fh < 1.0 and fv < 1.0

    def test_random_geometry_is_reproducible(self):
        a = EyeGeometry.random(np.random.default_rng(7))
        b = EyeGeometry.random(np.random.default_rng(7))
        assert a == b

    def test_random_geometry_varies_with_seed(self):
        a = EyeGeometry.random(np.random.default_rng(1))
        b = EyeGeometry.random(np.random.default_rng(2))
        assert a != b


class TestEyeState:
    def test_clipped_limits_gaze(self):
        geo = EyeGeometry(max_angle_deg=20.0)
        state = EyeState(gaze_h=50.0, gaze_v=-50.0).clipped(geo)
        assert state.gaze_h == 20.0
        assert state.gaze_v == -20.0

    def test_clipped_preserves_flags(self):
        geo = EyeGeometry()
        state = EyeState(gaze_h=1.0, gaze_v=1.0, in_saccade=True, in_blink=True)
        clipped = state.clipped(geo)
        assert clipped.in_saccade and clipped.in_blink
