"""Tests for oculomotor dynamics generation."""

import numpy as np
import pytest

from repro.synth import (
    EyeGeometry,
    GazeDynamicsConfig,
    GazeSequenceGenerator,
    main_sequence_peak_velocity,
)


def make_gen(seed=0, fps=120.0, config=None):
    rng = np.random.default_rng(seed)
    return GazeSequenceGenerator(EyeGeometry(), fps, rng, config)


class TestMainSequence:
    def test_velocity_increases_with_amplitude(self):
        assert main_sequence_peak_velocity(20.0) > main_sequence_peak_velocity(5.0)

    def test_velocity_saturates_below_700(self):
        assert main_sequence_peak_velocity(1000.0) <= 700.0

    def test_small_amplitude_small_velocity(self):
        assert main_sequence_peak_velocity(0.5) < 50.0


class TestGazeSequenceGenerator:
    def test_generates_requested_length(self):
        gen = make_gen()
        states = gen.generate(50)
        assert len(states) == 50

    def test_reproducible_with_seed(self):
        a = make_gen(seed=3).generate(100)
        b = make_gen(seed=3).generate(100)
        assert all(
            s1.gaze_h == s2.gaze_h and s1.gaze_v == s2.gaze_v
            for s1, s2 in zip(a, b)
        )

    def test_gaze_stays_in_cone(self):
        gen = make_gen(seed=5)
        limit = EyeGeometry().max_angle_deg
        for state in gen.generate(2000):
            assert abs(state.gaze_h) <= limit + 1e-9
            assert abs(state.gaze_v) <= limit + 1e-9

    def test_saccades_occur(self):
        gen = make_gen(seed=1)
        states = gen.generate(2000)
        assert any(s.in_saccade for s in states)

    def test_blinks_occur_and_close_lid(self):
        cfg = GazeDynamicsConfig(blink_rate_hz=3.0)
        gen = make_gen(seed=2, config=cfg)
        states = gen.generate(2000)
        blink_states = [s for s in states if s.in_blink]
        assert blink_states
        assert min(s.lid_aperture for s in blink_states) < 0.5

    def test_lid_open_outside_blinks(self):
        gen = make_gen(seed=4)
        for state in gen.generate(500):
            if not state.in_blink:
                assert state.lid_aperture == 1.0

    def test_saccade_speed_is_physiological(self):
        """Frame-to-frame velocity never exceeds the 700 deg/s main-sequence cap."""
        fps = 500.0
        gen = make_gen(seed=6, fps=fps)
        states = gen.generate(3000)
        gaze = np.array([[s.gaze_h, s.gaze_v] for s in states])
        speed = np.linalg.norm(np.diff(gaze, axis=0), axis=1) * fps
        # Minimum-jerk peak velocity is 1.875x mean; with our duration rule the
        # peak stays at/below the main-sequence cap (plus drift/tremor slack).
        assert speed.max() < 800.0

    def test_rejects_bad_fps(self):
        with pytest.raises(ValueError):
            make_gen(fps=0.0)

    def test_rejects_negative_frames(self):
        with pytest.raises(ValueError):
            make_gen().generate(-1)

    def test_dilation_stays_bounded(self):
        gen = make_gen(seed=8)
        for state in gen.generate(1000):
            assert 0.7 <= state.dilation <= 1.3
