"""Tests for the OpenEDS-format adapter (real-data drop-in path)."""

import numpy as np
import pytest

from repro.synth import DatasetConfig, SyntheticEyeDataset
from repro.synth.openeds_adapter import OpenEDSAdapter, write_sequence_archive


@pytest.fixture()
def archive_dir(tmp_path):
    """A directory of two synthetic recordings in the archive format."""
    ds = SyntheticEyeDataset(
        DatasetConfig(height=32, width=32, frames_per_sequence=5, num_sequences=2)
    )
    for i, seq in enumerate(ds):
        write_sequence_archive(
            tmp_path / f"seq_{i}.npz",
            frames=seq.frames,
            segmentations=seq.segmentations,
            gazes=seq.gazes,
        )
    return tmp_path


class TestWriteArchive:
    def test_rejects_mismatched_stacks(self, tmp_path):
        with pytest.raises(ValueError):
            write_sequence_archive(
                tmp_path / "bad.npz",
                frames=np.zeros((3, 8, 8)),
                segmentations=np.zeros((3, 8, 9), dtype=int),
            )

    def test_rejects_bad_gaze_shape(self, tmp_path):
        with pytest.raises(ValueError):
            write_sequence_archive(
                tmp_path / "bad.npz",
                frames=np.zeros((3, 8, 8)),
                segmentations=np.zeros((3, 8, 8), dtype=int),
                gazes=np.zeros((3, 3)),
            )


class TestOpenEDSAdapter:
    def test_loads_sequences(self, archive_dir):
        adapter = OpenEDSAdapter(archive_dir)
        assert len(adapter) == 2
        seq = adapter[0]
        assert seq.frames.shape == (5, 32, 32)
        assert seq.segmentations.shape == (5, 32, 32)
        assert seq.gazes.shape == (5, 2)

    def test_roundtrip_matches_source(self, archive_dir):
        source = SyntheticEyeDataset(
            DatasetConfig(height=32, width=32, frames_per_sequence=5, num_sequences=2)
        )
        adapter = OpenEDSAdapter(archive_dir)
        np.testing.assert_allclose(adapter[0].frames, source[0].frames)
        np.testing.assert_array_equal(
            adapter[0].segmentations, source[0].segmentations
        )
        np.testing.assert_allclose(adapter[0].gazes, source[0].gazes)

    def test_roi_boxes_recomputed(self, archive_dir):
        source = SyntheticEyeDataset(
            DatasetConfig(height=32, width=32, frames_per_sequence=5, num_sequences=2)
        )
        adapter = OpenEDSAdapter(archive_dir)
        assert adapter[0].roi_boxes == source[0].roi_boxes

    def test_uint8_frames_normalized(self, tmp_path):
        frames = np.full((3, 8, 8), 255, dtype=np.uint8)
        write_sequence_archive(
            tmp_path / "u8.npz",
            frames=frames,
            segmentations=np.zeros((3, 8, 8), dtype=int),
        )
        adapter = OpenEDSAdapter(tmp_path)
        assert adapter[0].frames.max() == pytest.approx(1.0)

    def test_missing_gazes_tolerated(self, tmp_path):
        write_sequence_archive(
            tmp_path / "nogaze.npz",
            frames=np.zeros((3, 8, 8)),
            segmentations=np.zeros((3, 8, 8), dtype=int),
        )
        adapter = OpenEDSAdapter(tmp_path)
        assert np.isnan(adapter[0].gazes).all()

    def test_frame_pairs_and_split(self, archive_dir):
        adapter = OpenEDSAdapter(archive_dir)
        train, val = adapter.split()
        assert set(train) | set(val) == {0, 1}
        pairs = list(adapter.frame_pairs())
        assert len(pairs) == 2 * 4

    def test_works_with_strategy_harness(self, archive_dir):
        """Real-data path: the variant harness runs unchanged."""
        from repro.core import evaluate_strategy, make_strategy
        from repro.segmentation import ViTConfig, ViTSegmenter

        adapter = OpenEDSAdapter(archive_dir)
        rng = np.random.default_rng(0)
        vit = ViTSegmenter(
            ViTConfig(height=32, width=32, patch=8, dim=24, heads=3,
                      depth=1, decoder_depth=1),
            rng,
        )
        strategy = make_strategy("Ours (ROI+Random)", 8.0)
        result = evaluate_strategy(strategy, vit, adapter, [1], rng)
        assert result.frames == 4

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            OpenEDSAdapter(tmp_path / "nope")

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            OpenEDSAdapter(tmp_path)

    def test_bad_labels_raise(self, tmp_path):
        np.savez_compressed(
            tmp_path / "bad.npz",
            frames=np.zeros((2, 8, 8)),
            segmentations=np.full((2, 8, 8), 9, dtype=int),
        )
        adapter = OpenEDSAdapter(tmp_path)
        with pytest.raises(ValueError):
            adapter[0]
