"""Tests for the renderer, noise model, and dataset plumbing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synth import (
    SEG_CLASSES,
    DatasetConfig,
    EyeGeometry,
    EyeRenderer,
    EyeState,
    NoiseConfig,
    SensorNoiseModel,
    SyntheticEyeDataset,
    exposure_for_fps,
)


def render_one(state=None, height=48, width=48, seed=0):
    rng = np.random.default_rng(seed)
    geo = EyeGeometry()
    renderer = EyeRenderer(geo, height, width, rng)
    return renderer.render(state or EyeState())


class TestRenderer:
    def test_image_range_and_shape(self):
        frame = render_one()
        assert frame.image.shape == (48, 48)
        assert frame.image.min() >= 0.0 and frame.image.max() <= 1.0

    def test_all_four_classes_present_at_neutral_gaze(self):
        frame = render_one()
        assert set(np.unique(frame.segmentation)) == set(SEG_CLASSES.values())

    def test_pupil_darker_than_sclera(self):
        frame = render_one()
        pupil = frame.image[frame.segmentation == SEG_CLASSES["pupil"]]
        sclera = frame.image[frame.segmentation == SEG_CLASSES["sclera"]]
        assert pupil.mean() < sclera.mean()

    def test_roi_box_covers_foreground(self):
        frame = render_one()
        r0, c0, r1, c1 = frame.roi_box
        fg = frame.segmentation != SEG_CLASSES["background"]
        rows, cols = np.nonzero(fg)
        assert r0 <= rows.min() and rows.max() < r1
        assert c0 <= cols.min() and cols.max() < c1

    def test_blink_removes_foreground(self):
        frame = render_one(EyeState(lid_aperture=0.0))
        assert frame.roi_box is None
        assert np.all(frame.segmentation == SEG_CLASSES["background"])

    def test_background_is_static_across_states(self):
        rng = np.random.default_rng(0)
        renderer = EyeRenderer(EyeGeometry(), 48, 48, rng)
        a = renderer.render(EyeState(gaze_h=0.0))
        b = renderer.render(EyeState(gaze_h=15.0))
        bg_both = (a.segmentation == 0) & (b.segmentation == 0)
        np.testing.assert_array_equal(a.image[bg_both], b.image[bg_both])

    @given(gaze_h=st.floats(-20, 20), gaze_v=st.floats(-15, 15))
    @settings(max_examples=20, deadline=None)
    def test_pupil_centroid_tracks_gaze(self, gaze_h, gaze_v):
        frame = render_one(EyeState(gaze_h=gaze_h, gaze_v=gaze_v), height=64, width=64)
        mask = frame.segmentation == SEG_CLASSES["pupil"]
        if mask.sum() < 10:  # pupil may be clipped by lids at extremes
            return
        rows, cols = np.nonzero(mask)
        geo = EyeGeometry()
        exp_row, exp_col = geo.pupil_center(gaze_h, gaze_v)
        assert (rows.mean() + 0.5) / 64 == pytest.approx(exp_row, abs=0.06)
        assert (cols.mean() + 0.5) / 64 == pytest.approx(exp_col, abs=0.06)

    def test_rejects_tiny_resolution(self):
        with pytest.raises(ValueError):
            EyeRenderer(EyeGeometry(), 4, 4, np.random.default_rng(0))


class TestNoise:
    def test_exposure_for_fps_matches_paper(self):
        # Paper quotes ~8.3 ms exposure at 120 FPS.
        assert exposure_for_fps(120.0) == pytest.approx(8.3e-3, rel=0.01)

    def test_snr_improves_with_exposure(self):
        model = SensorNoiseModel()
        assert model.snr_db(0.5, 8e-3) > model.snr_db(0.5, 2e-3)

    def test_snr_drop_is_sqrt_like(self):
        """Shot-noise-limited SNR gains ~3 dB per exposure doubling."""
        model = SensorNoiseModel()
        gain = model.snr_db(0.5, 8e-3) - model.snr_db(0.5, 4e-3)
        assert 2.0 < gain < 4.0

    def test_apply_is_bounded_and_quantized(self):
        model = SensorNoiseModel(seed=1)
        clean = np.linspace(0, 1, 32 * 32).reshape(32, 32)
        noisy = model.apply(clean, exposure_for_fps(120))
        assert noisy.min() >= 0 and noisy.max() <= 1
        levels = noisy * (2**10 - 1)
        np.testing.assert_allclose(levels, np.round(levels), atol=1e-9)

    def test_noise_grows_at_short_exposure(self):
        model_a = SensorNoiseModel(seed=0)
        model_b = SensorNoiseModel(seed=0)
        clean = np.full((64, 64), 0.5)
        err_long = np.abs(model_a.apply(clean, 8e-3) - clean).mean()
        err_short = np.abs(model_b.apply(clean, 1e-3) - clean).mean()
        assert err_short > err_long

    def test_rejects_nonpositive_exposure(self):
        with pytest.raises(ValueError):
            SensorNoiseModel().apply(np.zeros((4, 4)), 0.0)


class TestDataset:
    def test_shapes_and_determinism(self):
        cfg = DatasetConfig(height=32, width=32, frames_per_sequence=6, num_sequences=2)
        ds1, ds2 = SyntheticEyeDataset(cfg), SyntheticEyeDataset(cfg)
        s1, s2 = ds1[0], ds2[0]
        assert s1.frames.shape == (6, 32, 32)
        np.testing.assert_array_equal(s1.frames, s2.frames)
        np.testing.assert_array_equal(s1.segmentations, s2.segmentations)

    def test_sequences_differ(self):
        ds = SyntheticEyeDataset(
            DatasetConfig(height=32, width=32, frames_per_sequence=4, num_sequences=2)
        )
        assert not np.array_equal(ds[0].frames, ds[1].frames)

    def test_split_is_disjoint_and_complete(self):
        ds = SyntheticEyeDataset(DatasetConfig(num_sequences=8, frames_per_sequence=2))
        train, val = ds.split(0.75)
        assert set(train) | set(val) == set(range(8))
        assert not set(train) & set(val)

    def test_frame_pairs_iteration(self):
        cfg = DatasetConfig(height=32, width=32, frames_per_sequence=5, num_sequences=2)
        ds = SyntheticEyeDataset(cfg)
        pairs = list(ds.frame_pairs())
        assert len(pairs) == 2 * 4  # (T-1) per sequence
        prev, cur, seg, gaze, box, seq_idx, t = pairs[0]
        assert prev.shape == (32, 32) and cur.shape == (32, 32)
        assert t == 1

    def test_clean_frames_when_noise_disabled(self):
        cfg = DatasetConfig(
            height=32, width=32, frames_per_sequence=3, num_sequences=1, apply_noise=False
        )
        seq = SyntheticEyeDataset(cfg)[0]
        np.testing.assert_array_equal(seq.frames, seq.clean_frames)

    def test_rejects_single_frame_sequences(self):
        with pytest.raises(ValueError):
            SyntheticEyeDataset(DatasetConfig(frames_per_sequence=1))

    def test_index_error(self):
        ds = SyntheticEyeDataset(DatasetConfig(num_sequences=1, frames_per_sequence=2))
        with pytest.raises(IndexError):
            ds[5]
