"""The zero-copy shard transport: handles, segments, lifecycle, parity.

What the transport layer guarantees (``repro.engine.transport``):

* publish/resolve round-trips any picklable payload exactly, whether the
  bytes travel through shared-memory segments or the inline-pickle
  fallback — results are bitwise-identical in both modes;
* identical content is deduplicated (publish again -> same handle, no
  new segments) while in-place mutation — being *content*-addressed —
  naturally produces a fresh segment instead of a stale cache hit;
* segment lifecycle is explicit: per-run channels unlink on teardown,
  ``repro.api.Session``'s persistent channel unlinks on ``close()``, and
  nothing is left behind in ``/dev/shm``.
"""

import glob
import os

import numpy as np
import pytest

from repro.api import ExperimentSpec, Session
from repro.engine import (
    SequenceRunner,
    Stage,
    TransportChannel,
    TransportError,
    shard_executor,
    shm_available,
)
from repro.engine.transport import (
    MIN_SHM_ARRAY_BYTES,
    SEGMENT_PREFIX,
    resolve_payload,
    worker_cached,
)

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="shared memory unavailable in this environment"
)


def _live_segments() -> set[str]:
    return {
        os.path.basename(p)
        # repro: allow[REP104] builds an order-insensitive set of names
        for p in glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*")
    }


class Probe(Stage):
    name = "probe"

    def process(self, ctx, seq):
        ctx.gaze_pred = (float(ctx.seq_index), float(ctx.t))


class Seq:
    frames = np.zeros((3, 4, 4))


class TestRoundTrip:
    def payload(self):
        return {
            "big": np.arange(MIN_SHM_ARRAY_BYTES, dtype=np.float64),
            "small": np.arange(4, dtype=np.int32),
            "meta": ("nested", [1, 2, 3]),
        }

    @needs_shm
    def test_shm_round_trip_is_exact(self):
        with TransportChannel() as channel:
            assert channel.use_shm
            handle = channel.publish(self.payload())
            # The big array left the blob; the handle is tiny either way.
            assert channel.stats["arrays_hoisted"] == 1
            assert handle.wire_bytes < 1024
            resolved = resolve_payload(handle)
            expected = self.payload()
            assert np.array_equal(resolved["big"], expected["big"])
            assert resolved["big"].dtype == expected["big"].dtype
            assert np.array_equal(resolved["small"], expected["small"])
            assert resolved["meta"] == expected["meta"]

    @needs_shm
    def test_resolved_arrays_are_read_only_views(self):
        # A kernel mutating shipped data must raise, not silently diverge
        # from the in-process execution modes.
        with TransportChannel() as channel:
            handle = channel.publish(self.payload())
            resolved = resolve_payload(handle)
            with pytest.raises(ValueError):
                # repro: allow[REP105] deliberately asserts the write raises
                resolved["big"][0] = -1.0

    def test_pickle_fallback_round_trip_is_exact(self):
        with TransportChannel(use_shm=False) as channel:
            assert not channel.use_shm
            handle = channel.publish(self.payload())
            assert handle.segment is None and handle.blob is not None
            resolved = resolve_payload(handle)
            assert np.array_equal(resolved["big"], self.payload()["big"])
            # No segments were ever created in fallback mode.
            assert channel.stats["segments_created"] == 0

    def test_disable_env_forces_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_SHM", "1")
        assert not shm_available()
        channel = TransportChannel()
        assert not channel.use_shm
        channel.close()


class TestDedupAndMutation:
    @needs_shm
    def test_identical_content_republish_reuses_segments(self):
        arr = np.ones(MIN_SHM_ARRAY_BYTES, dtype=np.float64)
        with TransportChannel() as channel:
            first = channel.publish({"w": arr})
            created = channel.stats["segments_created"]
            second = channel.publish({"w": arr.copy()})  # equal bytes
            assert second.digest == first.digest
            assert channel.stats["segments_created"] == created
            assert channel.stats["publish_reuses"] == 1

    @needs_shm
    def test_inplace_mutation_yields_fresh_content(self):
        # Content addressing: the optimizer stepping weights in place
        # must produce a new segment, never a stale cache hit.
        arr = np.ones(MIN_SHM_ARRAY_BYTES, dtype=np.float64)
        with TransportChannel() as channel:
            first = channel.publish({"w": arr})
            arr += 1.0
            second = channel.publish({"w": arr})
            assert second.digest != first.digest
            assert np.array_equal(
                resolve_payload(second)["w"], np.full(arr.shape, 2.0)
            )

    @needs_shm
    def test_slot_publish_releases_previous_generation(self):
        # Per-epoch weights: publishing generation e+1 into the slot
        # frees generation e's segments instead of accumulating.
        with TransportChannel() as channel:
            channel.publish(
                {"w": np.full(MIN_SHM_ARRAY_BYTES, 1.0)}, slot="models"
            )
            live_after_first = len(channel.segment_names())
            channel.publish(
                {"w": np.full(MIN_SHM_ARRAY_BYTES, 2.0)}, slot="models"
            )
            assert len(channel.segment_names()) == live_after_first
            assert channel.stats["segments_released"] > 0


class TestLifecycle:
    @needs_shm
    def test_close_unlinks_every_segment(self):
        channel = TransportChannel()
        channel.publish({"w": np.zeros(MIN_SHM_ARRAY_BYTES)})
        names = set(channel.segment_names())
        assert names and names <= _live_segments()
        channel.close()
        assert not names & _live_segments()
        channel.close()  # idempotent

    @needs_shm
    def test_publish_after_close_raises(self):
        channel = TransportChannel()
        channel.close()
        with pytest.raises(TransportError):
            channel.publish({"x": 1})

    def test_worker_cached_builds_once_per_key(self):
        calls = []

        def factory():
            calls.append(1)
            return "built"

        key = ("test_worker_cached", id(calls))
        assert worker_cached(key, factory) == "built"
        assert worker_cached(key, factory) == "built"
        assert len(calls) == 1


class TestEngineIntegration:
    def test_sharded_run_records_transport(self):
        run = SequenceRunner([Probe()]).run(
            [(i, Seq()) for i in range(4)], workers=2
        )
        info = run.transport
        assert info is not None
        assert info["mode"] in ("shm", "pickle")
        assert info["dispatches"] == 2
        assert info["payload_bytes_per_dispatch"] > 0

    def test_in_process_run_has_no_transport(self):
        run = SequenceRunner([Probe()]).run([(0, Seq())])
        assert run.transport is None

    def test_forced_pickle_transport_matches_shm(self):
        sequences = [(i, Seq()) for i in (7, 3, 9, 5)]
        reference = SequenceRunner([Probe()]).run(sequences)
        shm = SequenceRunner([Probe()]).run(sequences, workers=2)
        pickled = SequenceRunner([Probe()]).run(
            sequences, workers=2, transport=False
        )
        assert pickled.transport["mode"] == "pickle"
        for run in (shm, pickled):
            assert [(c.seq_index, c.t, c.gaze_pred) for c in run.contexts] == [
                (c.seq_index, c.t, c.gaze_pred) for c in reference.contexts
            ]

    @needs_shm
    def test_run_teardown_leaves_no_segments(self):
        before = _live_segments()
        SequenceRunner([Probe()]).run([(i, Seq()) for i in range(4)], workers=2)
        assert _live_segments() <= before

    @needs_shm
    def test_persistent_channel_reuses_payload_bytes(self):
        sequences = [(i, Seq()) for i in range(4)]
        with shard_executor(2) as pool, TransportChannel() as channel:
            first = SequenceRunner([Probe()]).run(
                sequences, workers=2, executor=pool, transport=channel
            )
            second = SequenceRunner([Probe()]).run(
                sequences, workers=2, executor=pool, transport=channel
            )
        # Steady state: every publish is a dedup hit, no new bytes move.
        assert second.transport["publish_reuses"] > 0
        assert second.transport["segment_bytes_written"] == 0
        assert second.transport["payload_bytes_per_dispatch"] <= (
            first.transport["payload_bytes_per_dispatch"]
        )


class TestSessionOwnership:
    @needs_shm
    def test_session_close_unlinks_channel_segments(self):
        session = Session()
        channel = session.transport()
        assert session.transport() is channel  # one channel per session
        channel.publish({"w": np.zeros(MIN_SHM_ARRAY_BYTES)})
        names = set(channel.segment_names())
        assert names <= _live_segments()
        session.close()
        assert not names & _live_segments()
        assert channel.closed

    @needs_shm
    def test_session_context_manager_leaves_no_segments(self):
        before = _live_segments()
        spec = ExperimentSpec.from_dict(
            {
                "workload": "throughput",
                "dataset": {"num_sequences": 4, "frames_per_sequence": 4},
                "training": {"epochs": 1, "train_indices": [0, 1]},
                "execution": {
                    "workers": 2,
                    "repeats": 1,
                    "eval_indices": [2, 3],
                },
            }
        )
        with Session() as session:
            result = session.run(spec)
        assert result.metrics["bitwise_identical"]
        assert _live_segments() <= before
