"""Sharded execution: multi-process shard merge == in-process modes.

The sharded mode's contract is that partitioning the sequence rank over
worker processes is invisible in the results: contexts come back in
sequence-major order, per-stage timings are summed over shards, and the
numeric content is bitwise-identical to the sequential reference (per-
sequence random streams are keyed by sequence index, never by execution
order or process placement).
"""

import numpy as np
import pytest

from repro.core import BlissCamPipeline, ci, evaluate_strategy, make_strategy
from repro.engine import SequenceRunner, Stage, contiguous_shards, shard_executor
from repro.engine.runner import STEAL_FACTOR


@pytest.fixture(scope="module")
def trained_pipeline():
    pipe = BlissCamPipeline(ci(num_sequences=6, frames_per_sequence=8))
    pipe.train([0, 1])
    return pipe


class Probe(Stage):
    name = "probe"

    def process(self, ctx, seq):
        ctx.gaze_pred = (float(ctx.seq_index), float(ctx.t))


class Seq:
    frames = np.zeros((3, 4, 4))


class VarSeq:
    """A sequence with a chosen frame count (unequal shard loads)."""

    def __init__(self, n_frames: int):
        self.frames = np.zeros((n_frames, 4, 4))


class FatProbe(Stage):
    """A stage that writes a bulky per-frame product (like a readout)."""

    name = "fat"

    def process(self, ctx, seq):
        ctx.gaze_pred = (float(ctx.seq_index), float(ctx.t))
        ctx.readout = np.full((64, 64), float(ctx.t))


class TestContiguousShards:
    def test_more_shards_than_items_drops_empty_pieces(self):
        shards = contiguous_shards([1, 2, 3], 8)
        assert shards == [[1], [2], [3]]

    def test_nonpositive_shard_count_raises(self):
        # Silently returning [] would lose every item.
        for bad in (0, -1, -7):
            with pytest.raises(ValueError, match="n_shards"):
                contiguous_shards([1, 2, 3], bad)

    def test_single_item(self):
        assert contiguous_shards(["only"], 1) == [["only"]]
        assert contiguous_shards(["only"], 5) == [["only"]]

    def test_empty_items(self):
        assert contiguous_shards([], 3) == []

    def test_concat_reproduces_input_in_order(self):
        # The property every fixed-order merge in the repo stands on.
        for n_items in (1, 2, 5, 7, 16, 33):
            items = list(range(n_items))
            for n_shards in (1, 2, 3, 4, 8, 40):
                shards = contiguous_shards(items, n_shards)
                assert [x for shard in shards for x in shard] == items
                assert all(shard for shard in shards)
                assert len(shards) <= n_shards
                # Balanced: piece sizes differ by at most one.
                sizes = [len(shard) for shard in shards]
                assert max(sizes) - min(sizes) <= 1


class TestShardedRunner:
    def test_invalid_workers_rejected(self):
        runner = SequenceRunner([Probe()])
        with pytest.raises(ValueError):
            runner.run([(0, Seq())], workers=0)

    def test_workers_one_runs_in_process(self):
        run = SequenceRunner([Probe()]).run([(0, Seq())], workers=1)
        assert run.workers == 1
        assert len(run.contexts) == 3

    def test_sequence_major_order_across_shards(self):
        run = SequenceRunner([Probe()]).run(
            [(i, Seq()) for i in (7, 3, 9, 5, 2)], workers=2
        )
        assert run.workers == 2
        assert [(c.seq_index, c.t) for c in run.contexts] == [
            (i, t) for i in (7, 3, 9, 5, 2) for t in range(3)
        ]

    def test_workers_clamped_to_sequence_count(self):
        run = SequenceRunner([Probe()]).run([(0, Seq()), (1, Seq())], workers=8)
        assert run.workers == 2
        assert len(run.contexts) == 6

    def test_timings_summed_over_shards(self):
        sequences = [(i, Seq()) for i in range(4)]
        solo = SequenceRunner([Probe()]).run(sequences)
        sharded = SequenceRunner([Probe()]).run(sequences, workers=2)
        assert sharded.stage_timings["probe"].frames == (
            solo.stage_timings["probe"].frames
        )
        assert sharded.stage_timings["probe"].calls == (
            solo.stage_timings["probe"].calls
        )
        assert sharded.stage_timings["probe"].seconds > 0

    def test_empty_sequence_list(self):
        run = SequenceRunner([Probe()]).run([], workers=4)
        assert run.contexts == []
        assert run.workers == 1

    def test_injected_executor_without_workers_rejected(self):
        # Silently ignoring an injected pool (and running in-process)
        # would defeat the caller's parallelism intent — fail loudly.
        with shard_executor(2) as pool:
            with pytest.raises(ValueError, match="workers >= 2"):
                SequenceRunner([Probe()]).run([(0, Seq())], executor=pool)
            with pytest.raises(ValueError, match="workers >= 2"):
                SequenceRunner([Probe()]).run(
                    [(0, Seq())], workers=1, executor=pool
                )

    def test_injected_executor_matches_per_call_pool(self):
        """An injected (persistent) pool with work-stealing shards is
        invisible in the results: same sequence-major order, same
        contents, same summed timing counts as the per-call pool."""
        sequences = [(i, Seq()) for i in (7, 3, 9, 5, 2, 8, 1)]
        per_call = SequenceRunner([Probe()]).run(sequences, workers=2)
        with shard_executor(2) as pool:
            injected = SequenceRunner([Probe()]).run(
                sequences, workers=2, executor=pool
            )
            again = SequenceRunner([Probe()]).run(
                sequences, workers=2, executor=pool
            )
        for run in (injected, again):
            assert [(c.seq_index, c.t, c.gaze_pred) for c in run.contexts] == [
                (c.seq_index, c.t, c.gaze_pred) for c in per_call.contexts
            ]
            assert run.stage_timings["probe"].frames == (
                per_call.stage_timings["probe"].frames
            )

    def test_steal_factor_oversubscription_preserves_merge_order(self):
        """Work-stealing shards (workers * STEAL_FACTOR pieces) over
        sequences of *unequal* lengths still merge sequence-major: short
        shards finish early and out of submission order, but the parent
        reduces futures in shard order, so completion order is
        invisible."""
        lengths = [9, 1, 7, 2, 8, 1, 6, 3, 5, 2, 4, 1]
        sequences = [(i, VarSeq(n)) for i, n in enumerate(lengths)]
        reference = SequenceRunner([Probe()]).run(sequences)
        with shard_executor(2) as pool:
            stolen = SequenceRunner([Probe()]).run(
                sequences, workers=2, executor=pool
            )
        # Oversubscription actually engaged: more shards than workers.
        assert stolen.transport["dispatches"] == min(
            len(sequences), 2 * STEAL_FACTOR
        )
        assert [(c.seq_index, c.t) for c in stolen.contexts] == [
            (c.seq_index, c.t) for c in reference.contexts
        ]
        assert [(c.seq_index, c.t) for c in reference.contexts] == [
            (i, t) for i, n in enumerate(lengths) for t in range(n)
        ]

    def test_sharded_merge_drops_intermediates_when_asked(self):
        """retain_intermediates=False must hold across the shard merge:
        workers release bulky per-frame products before contexts cross
        back to the parent, so merges ship results, not frame data."""
        sequences = [(i, Seq()) for i in range(4)]
        slim = SequenceRunner([FatProbe()], retain_intermediates=False).run(
            sequences, workers=2
        )
        fat = SequenceRunner([FatProbe()]).run(sequences, workers=2)
        assert all(c.readout is None for c in slim.contexts)
        assert all(c.gaze_pred is not None for c in slim.contexts)
        assert all(c.readout is not None for c in fat.contexts)


class TestShardedTracking:
    def test_three_modes_cross_checked_bitwise(self, trained_pipeline):
        """Sequential, batched lockstep and sharded (and their
        composition) all produce identical evaluation results."""
        indices = [2, 3, 4, 5]
        seq = trained_pipeline.evaluate(indices)
        runs = {
            "batched": trained_pipeline.evaluate(indices, batched=True),
            "sharded": trained_pipeline.evaluate(indices, workers=2),
            "sharded+batched": trained_pipeline.evaluate(
                indices, workers=2, batched=True
            ),
            "sharded x3": trained_pipeline.evaluate(indices, workers=3),
        }
        for name, other in runs.items():
            assert np.array_equal(seq.predictions, other.predictions), name
            assert np.array_equal(seq.truths, other.truths), name
            assert seq.stats.transmitted_bytes == (
                other.stats.transmitted_bytes
            ), name
            assert seq.stats.rle_ratios == other.stats.rle_ratios, name
            assert seq.stats.roi_fractions == other.stats.roi_fractions, name
            assert seq.horizontal == other.horizontal, name
            assert seq.vertical == other.vertical, name

    def test_sharded_with_reuse_window(self, trained_pipeline):
        seq = trained_pipeline.evaluate([2, 3, 4], reuse_window=4)
        shard = trained_pipeline.evaluate([2, 3, 4], reuse_window=4, workers=2)
        assert np.array_equal(seq.predictions, shard.predictions)
        assert seq.stats.transmitted_bytes == shard.stats.transmitted_bytes

    def test_sharded_stage_timings_cover_graph(self, trained_pipeline):
        result = trained_pipeline.evaluate([2, 3, 4], workers=2)
        assert set(result.stage_timings) == {
            "eventify", "roi", "sample", "readout", "segment", "gaze", "stats",
        }
        evaluated_frames = result.predictions.shape[0]
        assert result.stage_timings["segment"].frames == evaluated_frames


class TestShardedStrategySweep:
    def test_fig15_sweep_matches_sequential_in_all_modes(
        self, trained_pipeline
    ):
        """A Fig. 15-style sweep (several strategies, shared dataset) is
        bitwise-reproducible batched and sharded — the per-sequence
        strategy RNG spawns removed the sequential-only restriction."""
        dataset = trained_pipeline.dataset
        eval_idx = [2, 3, 4]
        for name in ("Ours (ROI+Random)", "Full+Random", "Skip", "ROI+Fixed"):
            results = {
                mode: evaluate_strategy(
                    make_strategy(name, 4.0, dataset=dataset),
                    trained_pipeline.segmenter,
                    dataset,
                    eval_idx,
                    np.random.default_rng(21),
                    **kwargs,
                )
                for mode, kwargs in [
                    ("sequential", {}),
                    ("batched", {"batched": True}),
                    ("chunked", {"batched": True, "batch_size": 2}),
                    ("sharded", {"workers": 2}),
                ]
            }
            ref = results["sequential"]
            for mode, result in results.items():
                assert result.horizontal == ref.horizontal, (name, mode)
                assert result.vertical == ref.vertical, (name, mode)
                assert result.mean_compression == ref.mean_compression, (
                    name, mode,
                )
                assert result.frames == ref.frames, (name, mode)
