"""Engine core tests: graph construction, context invariants, runner modes."""

import numpy as np
import pytest

from repro.core import BlissCamPipeline, ci
from repro.engine import (
    EventifyStage,
    FrameContext,
    SequenceRunner,
    SequenceState,
    Stage,
    StageGraph,
    build_strategy_graph,
    build_tracking_graph,
)


@pytest.fixture(scope="module")
def trained_pipeline():
    pipe = BlissCamPipeline(ci(num_sequences=4, frames_per_sequence=8))
    pipe.train([0, 1])
    return pipe


class TestStageGraph:
    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            StageGraph([])

    def test_non_stage_rejected(self):
        with pytest.raises(TypeError):
            StageGraph([EventifyStage(), object()])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            StageGraph([EventifyStage(), EventifyStage()])

    def test_stage_names_in_order(self, trained_pipeline):
        graph = build_tracking_graph(
            predictor=lambda e, s: np.array([0.1, 0.1, 0.9, 0.9]),
            segmenter=trained_pipeline.segmenter,
            gaze_estimator=trained_pipeline.gaze_estimator,
            height=64,
            width=64,
        )
        assert graph.stage_names == [
            "eventify",
            "roi",
            "sample",
            "readout",
            "segment",
            "gaze",
            "stats",
        ]

    def test_strategy_graph_names(self, trained_pipeline):
        from repro.sampling.strategies import ROIRandom

        graph = build_strategy_graph(
            strategy=ROIRandom(4.0),
            segmenter=trained_pipeline.segmenter,
            gaze_estimator=trained_pipeline.gaze_estimator,
            rng=np.random.default_rng(0),
        )
        assert graph.stage_names == [
            "eventify",
            "strategy_sample",
            "segment",
            "gaze",
        ]

    def test_bad_reuse_window_rejected(self):
        from repro.engine import ROIPredictStage, ROIReuseStage

        inner = ROIPredictStage(lambda e, s: np.zeros(4), 64, 64)
        with pytest.raises(ValueError):
            ROIReuseStage(inner, window=0)

    def test_bad_batch_size_rejected(self):
        with pytest.raises(ValueError):
            SequenceRunner([EventifyStage()], batch_size=0)


class TestFrameContextInvariants:
    def test_all_contexts_validate_after_run(self, trained_pipeline):
        # Run the real tracking graph and check every emitted context.
        template = trained_pipeline._sensor_template(77)
        from repro.engine import tracking_runner

        graph = build_tracking_graph(
            predictor=template.roi_predictor,
            segmenter=trained_pipeline.segmenter,
            gaze_estimator=trained_pipeline.gaze_estimator,
            height=64,
            width=64,
        )
        runner = tracking_runner(
            sensor_template=template, sensor_seed=77, graph=graph
        )
        run = runner.run([(2, trained_pipeline.dataset[2])])
        assert len(run.contexts) == 8
        assert run.contexts[0].skipped  # bootstrap frame
        assert len(run.evaluated) == 7
        for ctx in run.contexts:
            ctx.validate()
        for ctx in run.evaluated:
            # every stage timed, ROI box well-formed, gaze emitted
            assert set(ctx.stage_times) == set(graph.stage_names)
            assert ctx.gaze_pred is not None
            assert set(ctx.stats) == {
                "roi_fraction",
                "sampled_fraction",
                "token_fraction",
                "tx_bytes",
                "rle_ratio",
                "roi_iou",
            }
        assert run.frames_per_second > 0

    def test_validate_catches_leaky_sparse_frame(self):
        ctx = FrameContext(seq_index=0, t=1, frame=np.zeros((8, 8)))
        ctx.mask = np.zeros((8, 8), dtype=bool)
        ctx.sparse_frame = np.ones((8, 8))
        with pytest.raises(AssertionError):
            ctx.validate()

    def test_validate_catches_degenerate_box(self):
        ctx = FrameContext(seq_index=0, t=1, frame=np.zeros((8, 8)))
        ctx.roi_box = (3, 4, 3, 6)
        with pytest.raises(AssertionError):
            ctx.validate()

    def test_skipped_context_skips_validation(self):
        ctx = FrameContext(seq_index=0, t=0, frame=np.zeros((8, 8)))
        ctx.skipped = True
        ctx.roi_box = (3, 4, 3, 6)  # would fail if not skipped
        ctx.validate()


class TestRunnerExecution:
    def test_stage_exception_propagates(self):
        class Boom(Stage):
            name = "boom"

            def process(self, ctx, seq):
                raise RuntimeError("stage failure")

        class Seq:
            frames = np.zeros((2, 4, 4))

        runner = SequenceRunner([Boom()])
        with pytest.raises(RuntimeError, match="stage failure"):
            runner.run([(0, Seq())])

    def test_state_factory_called_per_sequence(self):
        seen = []

        class Probe(Stage):
            name = "probe"

            def process(self, ctx, seq):
                seen.append((seq.seq_index, ctx.t))

        class Seq:
            frames = np.zeros((3, 4, 4))

        def factory(i):
            return SequenceState(seq_index=i)

        SequenceRunner([Probe()], factory).run([(5, Seq()), (9, Seq())])
        assert seen == [(5, 0), (5, 1), (5, 2), (9, 0), (9, 1), (9, 2)]

    def test_batched_lockstep_handles_unequal_lengths(self):
        order = []

        class Probe(Stage):
            name = "probe"

            def process_batch(self, ctxs, seqs):
                order.append([(c.seq_index, c.t) for c in ctxs])

            def process(self, ctx, seq):  # pragma: no cover
                raise AssertionError("batched run must use process_batch")

        class Short:
            frames = np.zeros((2, 4, 4))

        class Long:
            frames = np.zeros((4, 4, 4))

        run = SequenceRunner([Probe()]).run(
            [(0, Short()), (1, Long())], batched=True
        )
        assert order == [
            [(0, 0), (1, 0)],
            [(0, 1), (1, 1)],
            [(1, 2)],
            [(1, 3)],
        ]
        # Sequence-major output ordering regardless of lockstep execution.
        assert [(c.seq_index, c.t) for c in run.contexts] == [
            (0, 0), (0, 1), (1, 0), (1, 1), (1, 2), (1, 3),
        ]

    def test_empty_sequence_list_is_symmetric(self):
        runner = SequenceRunner([EventifyStage()])
        for batched in (False, True):
            run = runner.run([], batched=batched)
            assert run.contexts == []
            assert run.evaluated == []

    def test_batch_size_chunks_the_rank(self, trained_pipeline):
        full = trained_pipeline.evaluate([2, 3], batched=True)
        chunked = trained_pipeline.evaluate([2, 3], batched=True, batch_size=1)
        assert np.array_equal(full.predictions, chunked.predictions)

    def test_duplicate_sequence_indices_are_independent_lanes(
        self, trained_pipeline
    ):
        """A repeated index must be two lanes, not one double-processed
        lane (regression: lanes used to be keyed by sequence index)."""
        seq_res = trained_pipeline.evaluate([2, 2, 3])
        bat_res = trained_pipeline.evaluate([2, 2, 3], batched=True)
        assert np.array_equal(seq_res.predictions, bat_res.predictions)
        assert seq_res.stats.transmitted_bytes == bat_res.stats.transmitted_bytes
        # Both copies of sequence 2 ran identical spawned streams.
        single = trained_pipeline.evaluate([2])
        n = single.predictions.shape[0]
        assert np.array_equal(
            bat_res.predictions[:n], bat_res.predictions[n : 2 * n]
        )

    def test_retained_intermediates_are_dropped_when_disabled(self):
        from repro.engine import SequenceRunner, Stage

        class Mark(Stage):
            name = "mark"

            def process(self, ctx, seq):
                ctx.event_map = np.ones(ctx.frame.shape, dtype=bool)
                ctx.gaze_pred = (1.0, 2.0)
                ctx.stats = {"x": 1}

        class Seq:
            frames = np.zeros((2, 4, 4))

        run = SequenceRunner([Mark()], retain_intermediates=False).run(
            [(0, Seq())]
        )
        for ctx in run.evaluated:
            assert ctx.event_map is None  # released
            assert ctx.gaze_pred == (1.0, 2.0)  # scalars kept
            assert ctx.stats == {"x": 1}
