"""Executor backends: every backend bitwise == the in-process reference.

The :class:`~repro.engine.executors.ExecutorBackend` protocol is the
seam every sharded path dispatches through; these tests pin the
contract (submit/map/shutdown/max_workers), the four backends' parity
on a real staged-engine run, and the file-queue backend's
self-containment (jobs round-trip through spooled files only).
"""

import glob
import tempfile

import numpy as np
import pytest

from repro.engine import (
    EXECUTOR_BACKENDS,
    FileQueueBackend,
    InProcessExecutor,
    SequenceRunner,
    Stage,
    make_executor,
)
from repro.engine.executors import SPOOL_PREFIX, FileQueueJobError


def _square(x):
    return x * x


def _boom():
    raise ValueError("worker-side failure")


class Probe(Stage):
    name = "probe"

    def process(self, ctx, seq):
        ctx.gaze_pred = (float(ctx.seq_index), float(ctx.t))


class Seq:
    frames = np.zeros((3, 4, 4))


def _contexts(run):
    return [(c.seq_index, c.t, c.gaze_pred) for c in run.contexts]


class TestProtocolContract:
    @pytest.mark.parametrize("backend", sorted(EXECUTOR_BACKENDS))
    def test_submit_map_shutdown(self, backend):
        ex = make_executor(backend, 2)
        try:
            assert ex.max_workers == 2
            # result(timeout) is part of the future contract everywhere.
            assert ex.submit(_square, 7).result(30) == 49
            assert list(ex.map(_square, [1, 2, 3])) == [1, 4, 9]
        finally:
            ex.shutdown(wait=True)

    @pytest.mark.parametrize("backend", ("in_process", "thread", "file_queue"))
    def test_submit_after_shutdown_raises(self, backend):
        ex = make_executor(backend, 2)
        ex.shutdown(wait=True)
        with pytest.raises(RuntimeError):
            ex.submit(_square, 1)

    def test_worker_exception_reaches_the_future(self):
        ex = InProcessExecutor(2)
        with pytest.raises(ValueError, match="worker-side failure"):
            ex.submit(_boom).result()
        ex.shutdown()

    def test_file_queue_ships_tracebacks(self):
        ex = FileQueueBackend(max_workers=1)
        try:
            with pytest.raises(
                FileQueueJobError, match="worker-side failure"
            ):
                ex.submit(_boom).result(timeout=30)
        finally:
            ex.shutdown(wait=True)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown executor backend"):
            make_executor("slurm", 2)

    def test_in_process_results_arrive_in_submission_order(self):
        ex = InProcessExecutor(4)
        futures = [ex.submit(_square, i) for i in range(10)]
        assert [f.result() for f in futures] == [i * i for i in range(10)]
        ex.shutdown()


class TestEngineParity:
    """The acceptance pin: all four backends == serial reference on a
    real staged run (shards + transport + fixed-order merge)."""

    @pytest.fixture(scope="class")
    def reference(self):
        sequences = [(i, Seq()) for i in (4, 1, 3, 0, 2)]
        run = SequenceRunner([Probe()]).run(sequences)
        return sequences, _contexts(run)

    @pytest.mark.parametrize(
        "backend", ("in_process", "thread", "process_pool", "file_queue")
    )
    def test_backend_bitwise_identical_to_serial(self, backend, reference):
        sequences, expected = reference
        ex = make_executor(backend, 2)
        try:
            run = SequenceRunner([Probe()]).run(
                sequences, workers=2, executor=ex
            )
        finally:
            ex.shutdown(wait=True)
        assert _contexts(run) == expected
        assert run.stage_timings["probe"].frames == len(sequences) * 3


class TestFileQueueSelfContainment:
    def test_spool_directory_removed_on_shutdown(self):
        ex = FileQueueBackend(max_workers=2)
        root = ex.root
        assert root.name.startswith(SPOOL_PREFIX)
        assert ex.submit(_square, 3).result(timeout=30) == 9
        ex.shutdown(wait=True)
        assert not root.exists()

    def test_no_spool_leaks_after_shutdown(self):
        before = set(sorted(glob.glob(f"{tempfile.gettempdir()}/{SPOOL_PREFIX}*")))
        ex = FileQueueBackend(max_workers=2)
        list(ex.map(_square, range(8)))
        ex.shutdown(wait=True)
        after = set(sorted(glob.glob(f"{tempfile.gettempdir()}/{SPOOL_PREFIX}*")))
        assert after <= before

    def test_queue_drains_fifo_under_one_worker(self):
        # One worker forces strictly sequential claims; results must
        # still land under their own job names (no cross-talk).
        ex = FileQueueBackend(max_workers=1)
        try:
            futures = [ex.submit(_square, i) for i in range(6)]
            assert [f.result(timeout=60) for f in futures] == [
                i * i for i in range(6)
            ]
        finally:
            ex.shutdown(wait=True)

    def test_shutdown_without_wait_terminates_workers(self):
        ex = FileQueueBackend(max_workers=2)
        ex.submit(_square, 2).result(timeout=30)
        procs = list(ex._procs)
        ex.shutdown(wait=False)
        assert all(not p.is_alive() for p in procs)
