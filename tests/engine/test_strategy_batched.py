"""Bitwise parity of the batched strategy-graph kernels (Fig. 15 harness).

The strategy graph's stages (eventify-pair, strategy-sample,
segment-or-reuse, gaze-regress) grew true ``process_batch`` kernels; this
module pins batched == sequential == sharded for **every** registered
strategy — including the stochastic ones (Full+Random, ROI+Learned
tie-breaks, ROI+Random) and the stateful SKIP gate — across batch widths
{1, partial, full-rank}, and for all three segmentation backends.
"""

import numpy as np
import pytest

from repro.core.variants import evaluate_strategy, make_strategy
from repro.engine.stage import Stage
from repro.engine.stages import (
    EventifyPairStage,
    GazeRegressStage,
    SegmentOrReuseStage,
    StrategySampleStage,
)
from repro.sampling.strategies import STRATEGY_NAMES
from repro.segmentation.edgaze import EdGazeNet
from repro.segmentation.ritnet import RITNet
from repro.segmentation.vit import ViTConfig, ViTSegmenter
from repro.synth.dataset import DatasetConfig, SyntheticEyeDataset

COMPRESSION = 4.0
EVAL_IDX = [0, 1, 2, 3]


@pytest.fixture(scope="module")
def dataset():
    return SyntheticEyeDataset(
        DatasetConfig(
            height=32, width=32, frames_per_sequence=6, num_sequences=4,
            eye_scale=0.8,
        )
    )


@pytest.fixture(scope="module")
def vit():
    return ViTSegmenter(
        ViTConfig(height=32, width=32, patch=8, dim=24, heads=3,
                  depth=1, decoder_depth=1),
        np.random.default_rng(0),
    )


def _run(strategy_name, dataset, segmenter, **kwargs):
    strategy = make_strategy(strategy_name, COMPRESSION, dataset=dataset)
    rng = np.random.default_rng(int(np.random.default_rng(7).integers(2**32)))
    return evaluate_strategy(
        strategy, segmenter, dataset, EVAL_IDX, rng, **kwargs
    )


def _assert_same(a, b, label):
    assert a.horizontal == b.horizontal, label
    assert a.vertical == b.vertical, label
    assert a.mean_compression == b.mean_compression, label
    assert a.frames == b.frames, label


class TestBatchedStagesRegistered:
    def test_strategy_stages_override_process_batch(self):
        """The strategy graph must not fall back to the per-row base loop."""
        for stage_cls in (
            EventifyPairStage,
            StrategySampleStage,
            SegmentOrReuseStage,
            GazeRegressStage,
        ):
            assert stage_cls.process_batch is not Stage.process_batch


class TestStrategyGraphParity:
    @pytest.mark.parametrize("name", STRATEGY_NAMES)
    def test_batched_and_sharded_equal_sequential(self, name, dataset, vit):
        """batched == sequential == sharded, bitwise, per strategy —
        across batch widths 1 (degenerate rank), 3 (partial rank) and
        full-rank lockstep."""
        ref = _run(name, dataset, vit)
        for kwargs in (
            {"batched": True, "batch_size": 1},
            {"batched": True, "batch_size": 3},
            {"batched": True},
            {"workers": 2},
        ):
            _assert_same(ref, _run(name, dataset, vit, **kwargs), (name, kwargs))


class TestDenseBackendParity:
    @pytest.mark.parametrize("net_cls", [EdGazeNet, RITNet])
    def test_dense_backend_batched_equals_sequential(
        self, net_cls, dataset
    ):
        """Eval-mode conv backends ride predict_batch through the
        segment-or-reuse stage; SKIP exercises the reuse/compute split."""
        net = net_cls(np.random.default_rng(3), base_channels=4).eval()
        for name in ("Skip", "Ours (ROI+Random)"):
            ref = _run(name, dataset, net)
            _assert_same(ref, _run(name, dataset, net, batched=True), name)

    @pytest.mark.parametrize("net_cls", [EdGazeNet, RITNet])
    def test_training_mode_falls_back_per_row(self, net_cls, dataset):
        """A net still in training mode must not be batch-stacked (batch
        norm would couple rows) — the stage's per-row fallback keeps the
        run bitwise-equal to sequential even then."""
        def fresh():
            return net_cls(np.random.default_rng(3), base_channels=4)

        assert fresh().training  # fresh nets start in training mode
        ref = _run("Ours (ROI+Random)", dataset, fresh())
        bat = _run("Ours (ROI+Random)", dataset, fresh(), batched=True)
        _assert_same(ref, bat, net_cls.__name__)
