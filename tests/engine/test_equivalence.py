"""Equivalence guarantees of the staged engine.

Three independent properties are pinned down, each exactly:

1. **batched == sequential** — the vectorized lockstep mode must produce
   bitwise-identical ``EvaluationResult`` contents to the sequential
   reference mode (the PR acceptance bar).
2. **staged == pre-refactor loop** — the stage decomposition must
   reproduce the original monolithic ``evaluate`` loop (including the
   deleted ``sensor.roi_predictor`` monkeypatch mechanism for ROI reuse)
   frame for frame; the reference transcriptions live in this file.
3. **vectorized kernels == scalar kernels** — the batched-only fast paths
   (grouped packed ViT, run-length accounting) match their scalar
   counterparts on randomized inputs.
"""

import numpy as np
import pytest

from repro.core import BlissCamPipeline, ci, evaluate_strategy, make_strategy
from repro.gaze.metrics import angular_errors
from repro.sampling.roi import ROIReusePolicy, box_iou
from repro.segmentation import ViTConfig, ViTSegmenter
from repro.synth import DatasetConfig, SyntheticEyeDataset


@pytest.fixture(scope="module")
def trained_pipeline():
    pipe = BlissCamPipeline(ci(num_sequences=5, frames_per_sequence=8))
    pipe.train([0, 1])
    return pipe


def reference_evaluate(pipeline, eval_indices, reuse_window=1, sensor_seed=1234):
    """Faithful transcription of the pre-refactor monolithic evaluate loop.

    This is the seed repository's ``BlissCamPipeline.evaluate`` body —
    per-frame ``sensor.capture`` with the ROI-reuse policy implemented by
    temporarily monkeypatching ``sensor.roi_predictor`` — ported only to
    the engine's per-sequence stream semantics (one sensor spawn and a
    fresh gaze-fallback state per sequence).  The staged engine must
    reproduce it exactly.
    """
    template = pipeline.build_sensor(seed=sensor_seed)
    reuse = ROIReusePolicy(window=reuse_window)
    preds, truths = [], []
    records = []
    tokens_total = pipeline.segmenter.config.tokens
    for seq_index in eval_indices:
        seq = pipeline.dataset[seq_index]
        sensor = template.spawn([sensor_seed, seq_index])
        reuse.reset()
        pipeline.gaze_estimator.fallback_state = (0.0, 0.0)
        prev_seg_pred = None
        for t in range(len(seq)):
            if reuse_window > 1 and not reuse.should_predict():
                cached = reuse.current()
                original = sensor.roi_predictor
                sensor.roi_predictor = lambda e, s, _c=cached: _c
                out = sensor.capture(seq.frames[t], prev_seg_pred)
                sensor.roi_predictor = original
                reuse.tick()
            else:
                out = sensor.capture(seq.frames[t], prev_seg_pred)
                if out is not None:
                    reuse.update(out.roi_box_norm)
            if out is None:
                continue
            sparse, mask = sensor.host_decode(out)
            seg_pred = pipeline.segmenter.predict_packed(sparse, mask)
            prev_seg_pred = seg_pred
            preds.append(pipeline.gaze_estimator.predict(seg_pred))
            truths.append(seq.gazes[t])
            n = sparse.size
            patch = pipeline.segmenter.config.patch
            token_mask = mask.reshape(
                mask.shape[0] // patch, patch, mask.shape[1] // patch, patch
            ).any(axis=(1, 3))
            gt_box = seq.roi_boxes[t]
            records.append(
                {
                    "roi_fraction": (
                        (out.roi_box[2] - out.roi_box[0])
                        * (out.roi_box[3] - out.roi_box[1])
                        / n
                    ),
                    "sampled_fraction": out.sampled_pixels / n,
                    "token_fraction": token_mask.sum() / tokens_total,
                    "tx_bytes": out.transmitted_bytes,
                    "rle_ratio": out.rle_stats.compression_ratio,
                    "roi_iou": (
                        box_iou(out.roi_box, gt_box)
                        if gt_box is not None
                        else None
                    ),
                }
            )
    return np.array(preds), np.array(truths), records


class TestBatchedEqualsSequential:
    def test_full_result_bitwise_identical(self, trained_pipeline):
        seq_res = trained_pipeline.evaluate([2, 3, 4])
        bat_res = trained_pipeline.evaluate([2, 3, 4], batched=True)
        assert np.array_equal(seq_res.predictions, bat_res.predictions)
        assert np.array_equal(seq_res.truths, bat_res.truths)
        assert seq_res.horizontal == bat_res.horizontal
        assert seq_res.vertical == bat_res.vertical
        s, b = seq_res.stats, bat_res.stats
        assert s.roi_fractions == b.roi_fractions
        assert s.sampled_fractions == b.sampled_fractions
        assert s.valid_token_fractions == b.valid_token_fractions
        assert s.transmitted_bytes == b.transmitted_bytes
        assert s.rle_ratios == b.rle_ratios
        assert s.roi_ious == b.roi_ious

    def test_reuse_window_bitwise_identical(self, trained_pipeline):
        seq_res = trained_pipeline.evaluate([2, 3, 4], reuse_window=4)
        bat_res = trained_pipeline.evaluate(
            [2, 3, 4], reuse_window=4, batched=True
        )
        assert np.array_equal(seq_res.predictions, bat_res.predictions)
        assert seq_res.stats.transmitted_bytes == bat_res.stats.transmitted_bytes


class TestStagedEqualsPreRefactor:
    @pytest.mark.parametrize("reuse_window", [1, 4])
    def test_tracking_parity(self, trained_pipeline, reuse_window):
        """The engine reproduces the monolithic loop exactly — including
        ROI reuse, whose monkeypatch mechanism the reuse stage replaced."""
        ref_preds, ref_truths, ref_records = reference_evaluate(
            trained_pipeline, [2, 3, 4], reuse_window=reuse_window
        )
        result = trained_pipeline.evaluate([2, 3, 4], reuse_window=reuse_window)
        assert np.array_equal(result.predictions, ref_preds)
        assert np.array_equal(result.truths, ref_truths)
        ref_h, ref_v = angular_errors(ref_preds, ref_truths)
        assert result.horizontal == ref_h
        assert result.vertical == ref_v
        stats = result.stats
        assert stats.roi_fractions == [r["roi_fraction"] for r in ref_records]
        assert stats.sampled_fractions == [
            r["sampled_fraction"] for r in ref_records
        ]
        assert stats.transmitted_bytes == [r["tx_bytes"] for r in ref_records]
        assert stats.rle_ratios == [r["rle_ratio"] for r in ref_records]
        assert stats.roi_ious == [
            r["roi_iou"] for r in ref_records if r["roi_iou"] is not None
        ]

    def test_strategy_parity(self):
        """``evaluate_strategy`` on the engine == the pre-refactor harness
        loop, for both a stochastic and a stateful (SKIP) strategy.

        The reference is the seed harness loop ported to the engine's
        per-sequence stream semantics: every sequence samples from its own
        ``strategy.spawn([seed, seq_index])`` clone and the gaze fallback
        resets at sequence boundaries (exactly as the tracking reference
        was ported to per-sequence sensor spawns in PR 1).
        """
        from repro.gaze.estimation import FittedGazeEstimator
        from repro.sampling.eventification import eventify

        dataset = SyntheticEyeDataset(
            DatasetConfig(
                height=32, width=32, frames_per_sequence=6, num_sequences=3,
                eye_scale=0.8,
            )
        )
        vit = ViTSegmenter(
            ViTConfig(height=32, width=32, patch=8, dim=24, heads=3,
                      depth=1, decoder_depth=1),
            np.random.default_rng(0),
        )
        eval_idx = [1, 2]
        segs = np.concatenate([dataset[i].segmentations for i in eval_idx])
        gazes = np.concatenate([dataset[i].gazes for i in eval_idx])

        for name in ("Ours (ROI+Random)", "Skip"):
            # Pre-refactor loop under per-sequence stream semantics.  The
            # seed derivation mirrors build_strategy_graph exactly.
            est_ref = FittedGazeEstimator()
            est_ref.fit(segs, gazes)
            template = make_strategy(name, 4.0, dataset=dataset)
            seed = int(np.random.default_rng(7).integers(2**32))
            preds_ref, truths_ref, comps_ref = [], [], []
            for seq_index in eval_idx:
                seq = dataset[seq_index]
                strategy = template.spawn([seed, seq_index])
                est_ref.fallback_state = est_ref.INITIAL_FALLBACK
                prev_seg = None
                for t in range(1, len(seq)):
                    event_map = eventify(seq.frames[t - 1], seq.frames[t])
                    decision = strategy.sample(
                        seq.frames[t], event_map, seq.roi_boxes[t], strategy.rng
                    )
                    if decision.reuse_previous and prev_seg is not None:
                        seg_pred = prev_seg
                    else:
                        seg_pred = vit.predict(
                            decision.sparse_frame, decision.mask
                        )
                        comps_ref.append(min(decision.compression, 1e6))
                    prev_seg = seg_pred
                    preds_ref.append(est_ref.predict(seg_pred))
                    truths_ref.append(seq.gazes[t])

            # Engine-backed harness with identically seeded inputs, in
            # every execution mode.
            for mode in ({}, {"batched": True}, {"workers": 2}):
                est_new = FittedGazeEstimator()
                est_new.fit(segs, gazes)
                result = evaluate_strategy(
                    make_strategy(name, 4.0, dataset=dataset),
                    vit,
                    dataset,
                    eval_idx,
                    np.random.default_rng(7),
                    gaze_estimator=est_new,
                    **mode,
                )
                assert result.frames == len(preds_ref)
                expected_compression = (
                    float(np.mean(comps_ref)) if comps_ref else 1.0
                )
                assert result.mean_compression == expected_compression
                ref_h, ref_v = angular_errors(
                    np.array(preds_ref), np.array(truths_ref)
                )
                assert result.horizontal == ref_h
                assert result.vertical == ref_v


class TestVectorizedKernels:
    def test_rle_stream_stats_matches_encode(self):
        from repro.hardware.sensor.rle import RunLengthCodec

        codec = RunLengthCodec()
        rng = np.random.default_rng(5)
        streams = [
            np.zeros(0, dtype=np.int64),
            np.zeros(10_000, dtype=np.int64),  # run splitting (> 4095)
            np.ones(17, dtype=np.int64),
            rng.integers(0, 1024, size=500) * (rng.random(500) < 0.2),
        ]
        for _ in range(50):
            n = int(rng.integers(1, 2000))
            streams.append(
                rng.integers(0, 1024, size=n) * (rng.random(n) < rng.random())
            )
        for stream in streams:
            _, slow = codec.encode(stream)
            assert codec.stream_stats(stream) == slow

    def test_packed_batch_matches_per_frame(self):
        rng = np.random.default_rng(11)
        vit = ViTSegmenter(
            ViTConfig(height=32, width=32, patch=8, dim=24, heads=3,
                      depth=1, decoder_depth=1),
            rng,
        )
        frames = rng.random((6, 32, 32))
        masks = rng.random((6, 32, 32)) < 0.15
        masks[3] = False  # empty-mask lane
        masks[4] = masks[1]  # force a token-count collision group
        batched = vit.predict_packed_batch(frames, masks)
        for i in range(6):
            assert np.array_equal(
                batched[i], vit.predict_packed(frames[i], masks[i])
            ), f"frame {i} diverged"
