"""Tests for the training loops, including the joint procedure."""

import numpy as np
import pytest

from repro.core import ci
from repro.sampling import ROIPredictor
from repro.segmentation import ViTConfig, ViTSegmenter
from repro.synth import DatasetConfig, SyntheticEyeDataset
from repro.training import (
    JointTrainConfig,
    JointTrainer,
    SoftROIMask,
    batched,
    train_segmentation,
)

RNG = np.random.default_rng(0)


def tiny_components(size=32):
    rng = np.random.default_rng(1)
    roi = ROIPredictor(size, size, rng, base_channels=2)
    vit = ViTSegmenter(
        ViTConfig(height=size, width=size, patch=8, dim=24, heads=3,
                  depth=1, decoder_depth=1),
        rng,
    )
    return roi, vit


class TestSoftROIMask:
    def test_mask_high_inside_low_outside(self):
        soft = SoftROIMask(32, 32, tau=0.02)
        mask = soft.forward(np.array([0.25, 0.25, 0.75, 0.75]))
        assert mask[16, 16] > 0.9
        assert mask[0, 0] < 0.1

    def test_gradient_matches_numeric(self):
        soft = SoftROIMask(16, 16, tau=0.08)
        box = np.array([0.3, 0.2, 0.7, 0.8])
        upstream = np.random.default_rng(2).standard_normal((16, 16))
        soft.forward(box)
        analytic = soft.backward(upstream)
        eps = 1e-6
        for i in range(4):
            plus, minus = box.copy(), box.copy()
            plus[i] += eps
            minus[i] -= eps
            numeric = (
                np.sum(soft.forward(plus) * upstream)
                - np.sum(soft.forward(minus) * upstream)
            ) / (2 * eps)
            assert analytic[i] == pytest.approx(numeric, rel=1e-4, abs=1e-7)

    def test_rejects_bad_tau(self):
        with pytest.raises(ValueError):
            SoftROIMask(8, 8, tau=0.0)


class TestTrainSegmentation:
    def _samples(self, n=6, size=32):
        rng = np.random.default_rng(3)
        return [
            (
                rng.random((size, size)),
                rng.random((size, size)) < 0.3,
                rng.integers(0, 4, size=(size, size)),
            )
            for _ in range(n)
        ]

    def test_loss_decreases(self):
        _, vit = tiny_components()
        result = train_segmentation(
            vit, self._samples(), epochs=3, rng=np.random.default_rng(4)
        )
        assert result.improved
        assert len(result.epoch_losses) == 3

    def test_supervise_sampled_only(self):
        _, vit = tiny_components()
        result = train_segmentation(
            vit,
            self._samples(),
            epochs=2,
            rng=np.random.default_rng(5),
            supervise_sampled_only=True,
        )
        assert len(result.epoch_losses) == 2

    def test_rejects_empty_samples(self):
        _, vit = tiny_components()
        with pytest.raises(ValueError):
            train_segmentation(vit, [], epochs=1, rng=RNG)

    def test_rejects_zero_epochs(self):
        _, vit = tiny_components()
        with pytest.raises(ValueError):
            train_segmentation(vit, self._samples(2), epochs=0, rng=RNG)

    def test_batched(self):
        chunks = list(batched([1, 2, 3, 4, 5], 2))
        assert chunks == [[1, 2], [3, 4], [5]]
        with pytest.raises(ValueError):
            list(batched([1], 0))

    def test_model_left_in_eval_mode(self):
        _, vit = tiny_components()
        train_segmentation(vit, self._samples(2), epochs=1, rng=RNG)
        assert not vit.training


class TestJointTrainer:
    def test_both_losses_decrease(self):
        roi, vit = tiny_components()
        ds = SyntheticEyeDataset(
            DatasetConfig(height=32, width=32, frames_per_sequence=6, num_sequences=2)
        )
        trainer = JointTrainer(
            roi, vit, JointTrainConfig(epochs=4), np.random.default_rng(6)
        )
        result = trainer.train(ds, [0, 1])
        assert result.improved
        assert result.roi_losses[-1] < result.roi_losses[0]

    def test_gradients_reach_roi_predictor_through_sampling(self):
        """With ROI-loss weight zero, only the seg loss can move the ROI net
        — verifying the approximate differentiability path of Sec. III-C."""
        roi, vit = tiny_components()
        # Bias the (untrained) predictor toward a large box so the random
        # sampler actually selects pixels; a fresh net outputs a ~2px box
        # whose masked gradient is legitimately zero.
        roi.fc2.bias.data[:] = np.log(
            np.array([0.1, 0.1, 0.9, 0.9]) / (1 - np.array([0.1, 0.1, 0.9, 0.9]))
        )
        ds = SyntheticEyeDataset(
            DatasetConfig(height=32, width=32, frames_per_sequence=4, num_sequences=1)
        )
        trainer = JointTrainer(
            roi, vit, JointTrainConfig(epochs=1, seg_to_roi_weight=0.5),
            np.random.default_rng(7),
        )
        before = {k: v.copy() for k, v in roi.state_dict().items()}

        # Disable the direct ROI MSE contribution by zeroing its gradient:
        # monkey-patch the loss to return zero gradient but keep the API.
        class ZeroMSE:
            def forward(self, pred, target, mask=None):
                self._shape = pred.shape
                return 0.0

            def backward(self):
                return np.zeros(self._shape)

        trainer.roi_loss = ZeroMSE()
        trainer.train(ds, [0])
        after = roi.state_dict()
        moved = any(
            not np.allclose(before[k], after[k]) for k in before
        )
        assert moved, "segmentation gradient did not reach the ROI predictor"

    def test_blink_frames_skip_roi_supervision(self):
        """Sequences with occluded frames (no GT box) still train."""
        roi, vit = tiny_components()
        cfg = DatasetConfig(
            height=32, width=32, frames_per_sequence=5, num_sequences=1
        )
        ds = SyntheticEyeDataset(cfg)
        seq = ds[0]
        seq.roi_boxes[2] = None  # force an occluded frame
        trainer = JointTrainer(
            roi, vit, JointTrainConfig(epochs=1), np.random.default_rng(8)
        )
        result = trainer.train(ds, [0])
        assert len(result.seg_losses) == 1

    def test_ci_config_is_consistent(self):
        cfg = ci()
        assert cfg.vit.height == cfg.dataset.height
        assert cfg.vit.width == cfg.dataset.width
