"""Edge cases of the generic training loop and the joint-training config.

Satellite coverage of this PR: ``batched()`` degenerate widths,
``TrainResult.final_loss`` on empty trajectories, the
``supervise_sampled_only`` gradient masking actually zeroing
unsampled-pixel gradients, eager :class:`JointTrainConfig` validation,
and the ROI-aware :class:`JointTrainResult.improved`.
"""

import numpy as np
import pytest

from repro.nn import CrossEntropyLoss, MSELoss
from repro.segmentation import ViTConfig, ViTSegmenter
from repro.training import (
    JointTrainConfig,
    JointTrainResult,
    TrainResult,
    batched,
    train_segmentation,
)


class TestBatchedEdges:
    def test_batch_size_equal_to_length_is_one_chunk(self):
        assert list(batched([1, 2, 3], 3)) == [[1, 2, 3]]

    def test_batch_size_above_length_is_one_chunk(self):
        assert list(batched([1, 2, 3], 100)) == [[1, 2, 3]]

    def test_empty_items_yield_nothing(self):
        assert list(batched([], 4)) == []


class TestRuntimeEntryValidation:
    def test_run_segmentation_epochs_validates_directly(self):
        # The runtime entry point is public surface too: calling it
        # without going through train_segmentation must fail with the
        # same named errors, not a bare ZeroDivisionError.
        from repro.training.runtime import run_segmentation_epochs

        rng = np.random.default_rng(0)
        vit = ViTSegmenter(
            ViTConfig(height=16, width=16, patch=8, dim=24, heads=3,
                      depth=1, decoder_depth=1),
            rng,
        )
        with pytest.raises(ValueError, match="no training samples"):
            run_segmentation_epochs(
                vit, [], epochs=1, rng=rng, lr=1e-3, batch_size=4,
                grad_clip=5.0, supervise_sampled_only=False,
            )
        sample = (np.zeros((16, 16)), np.ones((16, 16), dtype=bool),
                  np.zeros((16, 16), dtype=np.int64))
        with pytest.raises(ValueError, match="epochs"):
            run_segmentation_epochs(
                vit, [sample], epochs=0, rng=rng, lr=1e-3, batch_size=4,
                grad_clip=5.0, supervise_sampled_only=False,
            )


class TestTrainResultEdges:
    def test_final_loss_on_empty_trajectory_raises(self):
        with pytest.raises(ValueError, match="no epochs"):
            TrainResult().final_loss

    def test_empty_trajectory_never_improved(self):
        assert not TrainResult().improved
        assert not TrainResult(epoch_losses=[1.0]).improved


class TestSupervisedSampledOnly:
    def test_mask_zeroes_unsampled_pixel_gradients(self):
        # The loss-level mechanism behind supervise_sampled_only: the
        # cross-entropy gradient must vanish exactly at masked-out
        # positions, so nothing flows back from unsampled pixels.
        rng = np.random.default_rng(0)
        logits = rng.standard_normal((2, 8, 8, 4))
        targets = rng.integers(0, 4, size=(2, 8, 8))
        mask = rng.random((2, 8, 8)) < 0.3
        loss = CrossEntropyLoss()
        loss.forward(logits, targets, mask=mask)
        grad = loss.backward()
        assert np.all(grad[~mask] == 0.0)
        assert np.any(grad[mask] != 0.0)

    def test_training_with_mask_converges_on_sampled_pixels(self):
        rng = np.random.default_rng(1)
        vit = ViTSegmenter(
            ViTConfig(height=16, width=16, patch=8, dim=24, heads=3,
                      depth=1, decoder_depth=1),
            rng,
        )
        samples = [
            (
                rng.random((16, 16)),
                rng.random((16, 16)) < 0.4,
                rng.integers(0, 4, size=(16, 16)),
            )
            for _ in range(4)
        ]
        result = train_segmentation(
            vit, samples, epochs=2, rng=np.random.default_rng(2),
            supervise_sampled_only=True,
        )
        assert len(result.epoch_losses) == 2
        assert all(np.isfinite(result.epoch_losses))


class TestJointTrainConfigValidation:
    @pytest.mark.parametrize(
        "kwargs, field",
        [
            ({"epochs": 0}, "epochs"),
            ({"lr_segmenter": 0.0}, "lr_segmenter"),
            ({"lr_roi": -1e-3}, "lr_roi"),
            ({"roi_sampling_rate": 0.0}, "roi_sampling_rate"),
            ({"roi_sampling_rate": 1.5}, "roi_sampling_rate"),
            ({"seg_to_roi_weight": -0.1}, "seg_to_roi_weight"),
            ({"grad_clip": 0.0}, "grad_clip"),
            ({"tau": 0.0}, "tau"),
            ({"cue_dropout": -0.1}, "cue_dropout"),
            ({"cue_dropout": 1.1}, "cue_dropout"),
            ({"cue_dilate_prob": 2.0}, "cue_dilate_prob"),
            ({"cue_dilate_max_px": 0}, "cue_dilate_max_px"),
            ({"batch_size": 0}, "batch_size"),
        ],
    )
    def test_bad_field_is_named(self, kwargs, field):
        with pytest.raises(ValueError, match=f"joint.{field}"):
            JointTrainConfig(**kwargs)

    def test_defaults_and_boundaries_valid(self):
        JointTrainConfig()
        JointTrainConfig(
            cue_dropout=0.0, cue_dilate_prob=1.0, roi_sampling_rate=1.0,
            batch_size=64, grad_accum=True,
        )


class TestImprovedIsRoiAware:
    def test_both_trajectories_down_improves(self):
        result = JointTrainResult(
            seg_losses=[1.0, 0.5], roi_losses=[0.2, 0.1]
        )
        assert result.improved

    def test_roi_regression_blocks_improved(self):
        # Segmentation alone dropping no longer counts: the box feeds
        # the sampler the segmenter depends on at run time.
        result = JointTrainResult(
            seg_losses=[1.0, 0.5], roi_losses=[0.1, 0.4]
        )
        assert not result.improved

    def test_flat_roi_trajectory_still_improves(self):
        result = JointTrainResult(
            seg_losses=[1.0, 0.5], roi_losses=[0.1, 0.1]
        )
        assert result.improved

    def test_single_epoch_never_improved(self):
        assert not JointTrainResult(
            seg_losses=[1.0], roi_losses=[0.1]
        ).improved


class TestRowWeightSeam:
    """The per-row ``mask`` weighting the batched training ranks rely on."""

    def test_mse_zero_weight_rows_get_zero_loss_and_gradient(self):
        # The blink-frame mechanism of the batched joint rank: one
        # forward over a mixed supervised/unsupervised minibatch, with
        # unsupervised rows contributing exactly nothing.
        pred = np.array([[0.5, 0.5], [1.0, 0.0]])
        target = np.zeros_like(pred)
        mask = np.array([[1.0], [0.0]])
        loss = MSELoss()
        value = loss.forward(pred, target, mask=mask)
        assert value == pytest.approx(0.25)  # mean over the supervised row
        grad = loss.backward()
        assert np.all(grad[1] == 0.0)
        assert np.any(grad[0] != 0.0)

    def test_mse_all_rows_weighted_matches_unmasked(self):
        # weight=ones must reproduce the unmasked path exactly — the
        # B=1 supervised case of the joint rank vs the per-frame loop.
        rng = np.random.default_rng(3)
        pred = rng.standard_normal((1, 4))
        target = rng.standard_normal((1, 4))
        masked, unmasked = MSELoss(), MSELoss()
        assert masked.forward(pred, target, mask=np.ones((1, 1))) == (
            unmasked.forward(pred, target)
        )
        assert np.array_equal(masked.backward(), unmasked.backward())
