"""Pins for the batched + sharded training runtime (the PR's contract).

* ``batch_size=1`` reproduces the retired per-frame stepping **bitwise**
  — against a transcription of the historical ``JointTrainer._train_step``
  loop under the runtime's per-sample stream semantics (the PR 1/2
  convention for deliberately redefined RNG streams);
* the deterministic sub-kernels (vectorized eventification, the batched
  soft ROI mask) are bitwise batch-invariant;
* the data-parallel schedule (``grad_accum=True``) is bitwise-identical
  between in-process accumulation and any sharded worker count.
"""

import numpy as np
import pytest

from repro.nn import Adam, CrossEntropyLoss, MSELoss, clip_grad_norm
from repro.nn.functional import grey_dilation, grey_erosion
from repro.sampling import ROIPredictor
from repro.sampling.eventification import eventify
from repro.sampling.random_sampling import random_mask_in_box
from repro.sampling.roi import box_from_pixels, box_to_pixels
from repro.segmentation import ViTConfig, ViTSegmenter
from repro.synth import DatasetConfig, SyntheticEyeDataset
from repro.training import (
    JointTrainConfig,
    JointTrainer,
    SoftROIMask,
    TrainRunner,
    sample_stream,
)

SIZE = 32
SEED_RNG = 42


def tiny_components():
    rng = np.random.default_rng(1)
    roi = ROIPredictor(SIZE, SIZE, rng, base_channels=2)
    vit = ViTSegmenter(
        ViTConfig(height=SIZE, width=SIZE, patch=8, dim=24, heads=3,
                  depth=1, decoder_depth=1),
        rng,
    )
    return roi, vit


def tiny_dataset(num_sequences=2, frames=5):
    return SyntheticEyeDataset(
        DatasetConfig(
            height=SIZE,
            width=SIZE,
            frames_per_sequence=frames,
            num_sequences=num_sequences,
        )
    )


def reference_joint_train(roi, vit, cfg, dataset, indices, seed):
    """Transcription of the retired per-frame ``_train_step`` loop.

    Identical to the pre-runtime ``JointTrainer`` except for the stream
    semantics the runtime defines: each (epoch, sequence, frame) sample
    draws from its own :func:`sample_stream` instead of one serial
    generator, and the cue morphology is the numpy helper.  Everything
    else — scalar kernels, per-frame Adam steps, loss accounting — is
    the historical loop verbatim.
    """
    seg_loss = CrossEntropyLoss()
    roi_loss = MSELoss()
    opt_seg = Adam(vit.parameters(), lr=cfg.lr_segmenter)
    opt_roi = Adam(roi.parameters(), lr=cfg.lr_roi)
    soft_mask = SoftROIMask(SIZE, SIZE, tau=cfg.tau)
    seg_losses, roi_losses = [], []
    vit.train()
    roi.train()
    for epoch in range(cfg.epochs):
        seg_total, roi_total, steps = 0.0, 0.0, 0
        for seq_index in indices:
            seq = dataset[seq_index]
            for t in range(1, len(seq)):
                prev_frame = seq.frames[t - 1]
                frame = seq.frames[t]
                prev_seg = seq.segmentations[t - 1]
                target_seg = seq.segmentations[t]
                gt_box = seq.roi_boxes[t]
                height, width = frame.shape

                rng = sample_stream(seed, epoch, seq_index, t)
                event_map = eventify(prev_frame, frame)
                if cfg.cue_dropout and rng.random() < cfg.cue_dropout:
                    prev_seg = None
                elif (
                    prev_seg is not None
                    and cfg.cue_dilate_prob
                    and rng.random() < cfg.cue_dilate_prob
                ):
                    radius = int(rng.integers(1, cfg.cue_dilate_max_px + 1))
                    size = 2 * radius + 1
                    if rng.random() < 0.5:
                        prev_seg = grey_dilation(prev_seg, size)
                    else:
                        prev_seg = grey_erosion(prev_seg, size)
                roi_in = ROIPredictor.make_input(event_map, prev_seg)
                box_pred = roi(roi_in)

                if gt_box is not None:
                    gt_norm = box_from_pixels(gt_box, height, width)[None]
                    roi_loss_val = roi_loss.forward(box_pred, gt_norm)
                    grad_box_mse = roi_loss.backward()
                else:
                    roi_loss_val = 0.0
                    grad_box_mse = np.zeros_like(box_pred)

                pixel_box = box_to_pixels(box_pred[0], height, width)
                bern = random_mask_in_box(
                    frame.shape, pixel_box, cfg.roi_sampling_rate, rng
                )
                soft = soft_mask.forward(box_pred[0])
                eff_mask = bern * soft
                sparse = frame * eff_mask

                logits = vit(sparse[None], eff_mask[None])
                seg_loss_val = seg_loss.forward(logits, target_seg[None])
                grad_logits = seg_loss.backward()
                vit.zero_grad()
                grad_pix, grad_bit = vit.backward_to_input(grad_logits)
                grad_soft = (grad_pix[0] * frame + grad_bit[0]) * bern
                grad_box_seg = soft_mask.backward(grad_soft)

                total_grad_box = (
                    grad_box_mse + cfg.seg_to_roi_weight * grad_box_seg[None]
                )
                roi.zero_grad()
                roi.backward(total_grad_box)
                clip_grad_norm(roi.parameters(), cfg.grad_clip)
                clip_grad_norm(vit.parameters(), cfg.grad_clip)
                opt_roi.step()
                opt_seg.step()
                seg_total += seg_loss_val
                roi_total += float(roi_loss_val)
                steps += 1
        seg_losses.append(seg_total / max(steps, 1))
        roi_losses.append(roi_total / max(steps, 1))
    vit.eval()
    roi.eval()
    return seg_losses, roi_losses


def assert_states_equal(a, b):
    assert set(a) == set(b)
    for name in a:
        assert np.array_equal(a[name], b[name]), name


class TestBatchOnePinsLegacyLoop:
    def test_bitwise_parity_with_per_frame_transcription(self):
        dataset = tiny_dataset()
        cfg = JointTrainConfig(epochs=2, batch_size=1)

        ref_roi, ref_vit = tiny_components()
        seed = int(np.random.default_rng(SEED_RNG).integers(2**63 - 1))
        ref_seg, ref_roi_losses = reference_joint_train(
            ref_roi, ref_vit, cfg, dataset, [0, 1], seed
        )

        roi, vit = tiny_components()
        trainer = JointTrainer(
            roi, vit, cfg, np.random.default_rng(SEED_RNG)
        )
        result = trainer.train(dataset, [0, 1])

        assert result.seg_losses == ref_seg
        assert result.roi_losses == ref_roi_losses
        assert_states_equal(roi.state_dict(), ref_roi.state_dict())
        assert_states_equal(vit.state_dict(), ref_vit.state_dict())

    def test_blink_frames_contribute_zero_roi_loss(self):
        dataset = tiny_dataset(num_sequences=1)
        seq = dataset[0]
        for t in range(len(seq)):
            seq.roi_boxes[t] = None  # fully occluded sequence
        roi, vit = tiny_components()
        trainer = JointTrainer(
            roi, vit, JointTrainConfig(epochs=1), np.random.default_rng(3)
        )
        result = trainer.train(dataset, [0])
        assert result.roi_losses == [0.0]


class TestSubKernelBatchInvariance:
    def test_eventify_is_batch_invariant(self):
        rng = np.random.default_rng(0)
        prevs = rng.random((5, SIZE, SIZE))
        frames = rng.random((5, SIZE, SIZE))
        stacked = eventify(prevs, frames)
        for i in range(5):
            assert np.array_equal(stacked[i], eventify(prevs[i], frames[i]))

    def test_soft_mask_forward_batch_matches_scalar(self):
        rng = np.random.default_rng(1)
        boxes = np.sort(rng.random((4, 4)), axis=-1)
        soft = SoftROIMask(SIZE, SIZE, tau=0.05)
        stacked = soft.forward_batch(boxes)
        for i in range(4):
            scalar = SoftROIMask(SIZE, SIZE, tau=0.05)
            assert np.array_equal(stacked[i], scalar.forward(boxes[i]))

    def test_soft_mask_backward_batch_matches_scalar(self):
        rng = np.random.default_rng(2)
        boxes = np.sort(rng.random((3, 4)), axis=-1)
        grads = rng.standard_normal((3, SIZE, SIZE))
        soft = SoftROIMask(SIZE, SIZE, tau=0.05)
        soft.forward_batch(boxes)
        stacked = soft.backward_batch(grads)
        for i in range(3):
            scalar = SoftROIMask(SIZE, SIZE, tau=0.05)
            scalar.forward(boxes[i])
            assert np.array_equal(stacked[i], scalar.backward(grads[i]))


class TestBatchedSchedule:
    def test_minibatched_training_runs_and_improves(self):
        dataset = tiny_dataset(num_sequences=2, frames=6)
        roi, vit = tiny_components()
        trainer = JointTrainer(
            roi, vit, JointTrainConfig(epochs=4, batch_size=4),
            np.random.default_rng(SEED_RNG),
        )
        result = trainer.train(dataset, [0, 1])
        assert len(result.seg_losses) == 4
        assert all(np.isfinite(result.seg_losses))
        assert result.seg_losses[-1] < result.seg_losses[0]

    def test_batch_size_above_one_is_a_semantic_change(self):
        # One Adam step per minibatch: documented as *different* from the
        # per-frame loop, not a silent drift the parity suite missed.
        dataset = tiny_dataset()

        def train(batch_size):
            roi, vit = tiny_components()
            JointTrainer(
                roi, vit,
                JointTrainConfig(epochs=1, batch_size=batch_size),
                np.random.default_rng(SEED_RNG),
            ).train(dataset, [0, 1])
            return roi.state_dict()

        a = train(1)
        b = train(4)
        assert any(not np.array_equal(a[k], b[k]) for k in a)


class TestShardedTraining:
    def _train(self, workers=None):
        dataset = tiny_dataset(num_sequences=3, frames=4)
        roi, vit = tiny_components()
        cfg = JointTrainConfig(epochs=2, batch_size=2, grad_accum=True)
        runner = TrainRunner(
            roi, vit, cfg, np.random.default_rng(SEED_RNG)
        )
        result = runner.run(dataset, [0, 1, 2], workers=workers)
        return roi.state_dict(), vit.state_dict(), result

    def test_workers_two_bitwise_identical_to_in_process(self):
        roi_a, vit_a, res_a = self._train(workers=None)
        roi_b, vit_b, res_b = self._train(workers=2)
        assert res_a.seg_losses == res_b.seg_losses
        assert res_a.roi_losses == res_b.roi_losses
        assert_states_equal(roi_a, roi_b)
        assert_states_equal(vit_a, vit_b)

    def test_worker_count_never_changes_results(self):
        roi_a, vit_a, res_a = self._train(workers=2)
        roi_b, vit_b, res_b = self._train(workers=3)
        assert res_a.seg_losses == res_b.seg_losses
        assert_states_equal(roi_a, roi_b)
        assert_states_equal(vit_a, vit_b)

    def test_empty_input_never_steps_a_warm_optimizer(self):
        # Regression: with no frame pairs the accumulated schedule must
        # not take an Adam step — a warm optimizer would move the
        # weights on pure momentum, which the stepped schedule (and the
        # retired loop) never did for empty input.
        dataset = tiny_dataset(num_sequences=2, frames=4)
        roi, vit = tiny_components()
        cfg = JointTrainConfig(epochs=2, grad_accum=True)
        runner = TrainRunner(roi, vit, cfg, np.random.default_rng(0))
        runner.run(dataset, [0, 1])  # warm the Adam moments
        before_roi = roi.state_dict()
        before_vit = vit.state_dict()
        result = runner.run(dataset, [])
        assert result.seg_losses == [0.0, 0.0]
        assert result.roi_losses == [0.0, 0.0]
        assert_states_equal(roi.state_dict(), before_roi)
        assert_states_equal(vit.state_dict(), before_vit)

    def test_sharding_requires_grad_accum(self):
        roi, vit = tiny_components()
        runner = TrainRunner(
            roi, vit, JointTrainConfig(epochs=1), np.random.default_rng(0)
        )
        with pytest.raises(ValueError, match="grad_accum"):
            runner.run(tiny_dataset(), [0, 1], workers=2)

    def test_config_less_dataset_ships_inline_and_stays_bitwise(self):
        # Duck-typed datasets without a reconstructing `config` fall back
        # to shipping the frame data to workers — same bits either way.
        class Wrapped:
            def __init__(self, inner):
                self._inner = inner

            def __getitem__(self, index):
                return self._inner[index]

        def train(wrap, workers):
            ds = tiny_dataset(num_sequences=3, frames=4)
            dataset = Wrapped(ds) if wrap else ds
            roi, vit = tiny_components()
            cfg = JointTrainConfig(epochs=1, batch_size=2, grad_accum=True)
            TrainRunner(roi, vit, cfg, np.random.default_rng(7)).run(
                dataset, [0, 1, 2], workers=workers
            )
            return roi.state_dict()

        assert_states_equal(train(True, 2), train(False, None))

    def test_mutated_sequences_are_honored_when_sharded(self):
        # A materialized-then-mutated sequence must reach the workers
        # as-is (inline shipping), not be silently re-rendered pristine
        # from the config — sharded and in-process runs must train on
        # the same data.
        def train(workers):
            ds = tiny_dataset(num_sequences=3, frames=4)
            for t in range(len(ds[1])):
                ds[1].roi_boxes[t] = None  # occlude one cached sequence
            roi, vit = tiny_components()
            cfg = JointTrainConfig(epochs=1, batch_size=2, grad_accum=True)
            runner = TrainRunner(roi, vit, cfg, np.random.default_rng(9))
            result = runner.run(ds, [0, 1, 2], workers=workers)
            return roi.state_dict(), result

        roi_a, res_a = train(None)
        roi_b, res_b = train(2)
        assert res_a.roi_losses == res_b.roi_losses
        assert_states_equal(roi_a, roi_b)

    def test_sharding_with_substituted_loss_rejected(self):
        # Workers rebuild the canonical kernels; a substituted loss
        # would be silently ignored there, breaking the worker-count
        # neutrality contract — so run() must refuse.
        class WeightedCE:
            def forward(self, logits, target, mask=None):
                return 0.0

            def backward(self):
                return np.zeros(1)

        roi, vit = tiny_components()
        runner = TrainRunner(
            roi, vit,
            JointTrainConfig(epochs=1, grad_accum=True),
            np.random.default_rng(0),
            seg_loss=WeightedCE(),
        )
        with pytest.raises(ValueError, match="canonical"):
            runner.run(tiny_dataset(), [0, 1], workers=2)

    def test_sharding_with_mismatched_soft_mask_rejected(self):
        # A canonical-*type* mask with a different tau would also
        # silently diverge (workers rebuild from config.tau) — the guard
        # must compare parameters, not just types.
        roi, vit = tiny_components()
        cfg = JointTrainConfig(epochs=1, grad_accum=True, tau=0.05)
        runner = TrainRunner(
            roi, vit, cfg, np.random.default_rng(0),
            soft_mask=SoftROIMask(SIZE, SIZE, tau=0.5),
        )
        with pytest.raises(ValueError, match="canonical"):
            runner.run(tiny_dataset(), [0, 1], workers=2)

    def test_executor_without_workers_rejected(self):
        roi, vit = tiny_components()
        runner = TrainRunner(
            roi, vit,
            JointTrainConfig(epochs=1, grad_accum=True),
            np.random.default_rng(0),
        )
        with pytest.raises(ValueError, match="workers"):
            runner.run(tiny_dataset(), [0, 1], executor=object())
