"""Tests for the learning-rate schedulers."""

import numpy as np
import pytest

from repro.nn import Adam, Parameter
from repro.training.schedules import ReduceOnPlateau, WarmupCosineScheduler


def make_optimizer(lr=1.0):
    return Adam([Parameter(np.zeros(3))], lr=lr)


class TestWarmupCosine:
    def test_warmup_ramps_linearly(self):
        opt = make_optimizer()
        sched = WarmupCosineScheduler(opt, base_lr=1.0, total_epochs=20, warmup_epochs=4)
        lrs = [sched.optimizer.lr] + [sched.step() for _ in range(3)]
        assert lrs == pytest.approx([0.25, 0.5, 0.75, 1.0])

    def test_decays_to_min_lr(self):
        opt = make_optimizer()
        sched = WarmupCosineScheduler(
            opt, base_lr=1.0, total_epochs=10, warmup_epochs=0, min_lr=0.1
        )
        for _ in range(20):
            sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_monotone_after_warmup(self):
        opt = make_optimizer()
        sched = WarmupCosineScheduler(opt, base_lr=1.0, total_epochs=30, warmup_epochs=5)
        lrs = [sched.lr_at(e) for e in range(5, 30)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_peak_is_base_lr(self):
        opt = make_optimizer()
        sched = WarmupCosineScheduler(opt, base_lr=0.3, total_epochs=10, warmup_epochs=2)
        assert max(sched.lr_at(e) for e in range(10)) == pytest.approx(0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            WarmupCosineScheduler(make_optimizer(), 1.0, total_epochs=0)
        with pytest.raises(ValueError):
            WarmupCosineScheduler(make_optimizer(), 1.0, total_epochs=5, warmup_epochs=5)
        with pytest.raises(ValueError):
            WarmupCosineScheduler(make_optimizer(), -1.0, total_epochs=5)


class TestReduceOnPlateau:
    def test_improvement_keeps_lr(self):
        opt = make_optimizer(lr=1.0)
        sched = ReduceOnPlateau(opt, patience=2)
        for metric in (1.0, 0.9, 0.8, 0.7):
            sched.step(metric)
        assert opt.lr == 1.0

    def test_plateau_halves_lr(self):
        opt = make_optimizer(lr=1.0)
        sched = ReduceOnPlateau(opt, factor=0.5, patience=2)
        sched.step(1.0)
        sched.step(1.0)
        sched.step(1.0)
        assert opt.lr == pytest.approx(0.5)

    def test_respects_min_lr(self):
        opt = make_optimizer(lr=1e-5)
        sched = ReduceOnPlateau(opt, factor=0.1, patience=1, min_lr=1e-6)
        for _ in range(10):
            sched.step(1.0)
        assert opt.lr == pytest.approx(1e-6)

    def test_counter_resets_after_reduction(self):
        opt = make_optimizer(lr=1.0)
        sched = ReduceOnPlateau(opt, factor=0.5, patience=2)
        for _ in range(4):  # two reductions need four stalls
            sched.step(1.0)
        # first stall pair -> 0.5; second pair (stall counter reset) -> 0.25
        sched.step(1.0)
        assert opt.lr in (pytest.approx(0.25), pytest.approx(0.5))

    def test_validation(self):
        with pytest.raises(ValueError):
            ReduceOnPlateau(make_optimizer(), factor=1.5)
        with pytest.raises(ValueError):
            ReduceOnPlateau(make_optimizer(), patience=0)
