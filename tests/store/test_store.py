"""ArtifactStore unit contract: keys, atomicity, versioning, GC, CLI.

Everything the resume path depends on is pinned here at the store
level; the session-level composition lives in ``test_resume.py``.
"""

import json
import os

import numpy as np
import pytest

from repro.store import (
    STORE_FORMAT_VERSION,
    ArtifactStore,
    StoreError,
    canonical_key,
    store_digest,
)
from repro.store.cli import main as store_main
from repro.store.store import STAGING_PREFIX


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


class TestKeys:
    def test_canonical_key_passes_hashes_names_scalars(self):
        key = ("pipeline", "cafe1234", 16.0, 1, True, None, (0, 1))
        assert canonical_key(key) == [
            "pipeline", "cafe1234", 16.0, 1, True, None, [0, 1],
        ]

    def test_canonical_key_rejects_live_objects(self):
        with pytest.raises(StoreError, match="object\n?.*identity|hashes"):
            canonical_key(("pipeline", object()))

    def test_digest_is_stable_across_tuple_list_spelling(self):
        assert store_digest(("a", (0, 1))) == store_digest(["a", [0, 1]])

    def test_digest_differs_for_different_keys(self):
        assert store_digest(("a", 1)) != store_digest(("a", 2))


class TestRoundTrip:
    def test_put_get_round_trips_arrays(self, store):
        value = {"weights": np.arange(12.0).reshape(3, 4), "epochs": 4}
        store.put(("pipeline", "deadbeef"), value)
        loaded = store.get(("pipeline", "deadbeef"))
        np.testing.assert_array_equal(loaded["weights"], value["weights"])
        assert loaded["epochs"] == 4

    def test_miss_raises_keyerror(self, store):
        with pytest.raises(KeyError):
            store.get(("pipeline", "unseen"))
        assert not store.contains(("pipeline", "unseen"))

    def test_record_carries_provenance(self, store):
        record = store.put(("run_result", "abc123"), [1, 2, 3])
        assert record.format == STORE_FORMAT_VERSION
        assert record.kind == "run_result"
        assert record.key == ["run_result", "abc123"]
        assert record.nbytes > 0
        assert record.payload_digest

    def test_overwrite_replaces_entry(self, store):
        store.put(("x", "k"), "old")
        store.put(("x", "k"), "new")
        assert store.get(("x", "k")) == "new"
        assert store.stats()["entries"] == 1

    def test_counters_track_hits_and_misses(self, store):
        store.put(("x", "k"), 1)
        store.get(("x", "k"))
        with pytest.raises(KeyError):
            store.get(("x", "other"))
        assert store.counters["puts"] == 1
        assert store.counters["hits"] == 1
        assert store.counters["misses"] == 1


class TestAtomicity:
    def test_no_staging_debris_after_put(self, store):
        store.put(("x", "k"), list(range(100)))
        assert store.staging_files() == []

    def test_torn_payload_is_refused_not_misread(self, store):
        store.put(("x", "k"), list(range(100)))
        digest = store.digest_for(("x", "k"))
        payload = store._entries / f"{digest}.pkl"
        payload.write_bytes(payload.read_bytes()[:10])  # simulate a tear
        with pytest.raises(KeyError, match="refused"):
            store.get(("x", "k"))

    def test_interrupted_write_leaves_only_staging_debris(self, store):
        # Emulate a SIGTERM mid-write: a staging file exists, no record.
        debris = store._staging / f"{STAGING_PREFIX}interrupted"
        debris.write_bytes(b"partial")
        assert store.stats()["entries"] == 0
        assert len(store.staging_files()) == 1
        report = store.gc()
        assert report["staging_purged"] == [debris.name]
        assert store.staging_files() == []


class TestVersioning:
    def _age_format(self, store, key, version):
        digest = store.digest_for(key)
        meta = store._entries / f"{digest}.json"
        data = json.loads(meta.read_text())
        data["format"] = version
        meta.write_text(json.dumps(data))

    def test_stale_format_refused(self, store):
        store.put(("x", "k"), 42)
        self._age_format(store, ("x", "k"), STORE_FORMAT_VERSION + 1)
        assert not store.contains(("x", "k"))
        with pytest.raises(KeyError, match="format"):
            store.get(("x", "k"))
        assert store.counters["stale_refused"] == 1

    def test_gc_evicts_stale_first(self, store):
        store.put(("x", "stale"), 1)
        store.put(("x", "live"), 2)
        self._age_format(store, ("x", "stale"), -1)
        report = store.gc()
        assert report["evicted"] == [store.digest_for(("x", "stale"))]
        assert store.get(("x", "live")) == 2


class TestGC:
    def test_entry_budget_evicts_least_recently_used(self, store):
        for i in range(4):
            store.put(("x", f"k{i}"), i)
        # Touch k0 and k1: they become most-recently-used.
        os_times = [("x", "k0"), ("x", "k1")]
        for key in os_times:
            self._touch(store, key)
        report = store.gc(max_entries=2)
        assert len(report["evicted"]) == 2
        assert store.contains(("x", "k0"))
        assert store.contains(("x", "k1"))
        assert not store.contains(("x", "k2"))
        assert not store.contains(("x", "k3"))

    def test_byte_budget_evicts_down_to_size(self, store):
        for i in range(4):
            store.put(("x", f"k{i}"), bytes(1000))
        per_entry = store.records()[0][0].nbytes
        report = store.gc(max_bytes=2 * per_entry)
        assert report["bytes"] <= 2 * per_entry
        assert report["entries"] == 2

    def test_unbudgeted_gc_keeps_live_entries(self, store):
        store.put(("x", "k"), 1)
        report = store.gc()
        assert report["evicted"] == []
        assert store.get(("x", "k")) == 1

    @staticmethod
    def _touch(store, key):
        # Bump the LRU stamp the way a real `get` does, but with an
        # explicit future mtime so filesystems with coarse timestamps
        # cannot tie-break the test.
        digest = store.digest_for(key)
        for suffix in (".json", ".pkl"):
            path = store._entries / f"{digest}{suffix}"
            stat = path.stat()
            os.utime(
                path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 10**9)
            )


class TestCLI:
    def test_ls_renders_entries_and_stats(self, store, tmp_path, capsys):
        store.put(("pipeline", "cafe"), 1)
        out_json = tmp_path / "ls.json"
        code = store_main(
            ["ls", str(store.root), "--json", str(out_json)]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "pipeline" in printed
        assert "1 entries" in printed
        data = json.loads(out_json.read_text())
        assert data["entries"][0]["kind"] == "pipeline"
        assert data["stats"]["entries"] == 1

    def test_rm_by_digest_prefix(self, store, capsys):
        store.put(("x", "k"), 1)
        digest = store.digest_for(("x", "k"))
        assert store_main(["rm", str(store.root), digest[:8]]) == 0
        assert not store.contains(("x", "k"))

    def test_rm_without_selector_is_usage_error(self, store, capsys):
        assert store_main(["rm", str(store.root)]) == 2

    def test_gc_reports_budget_eviction(self, store, tmp_path, capsys):
        for i in range(3):
            store.put(("x", f"k{i}"), i)
        out_json = tmp_path / "gc.json"
        code = store_main(
            [
                "gc", str(store.root),
                "--max-entries", "1",
                "--json", str(out_json),
            ]
        )
        assert code == 0
        report = json.loads(out_json.read_text())
        assert len(report["evicted"]) == 2
        assert report["entries"] == 1

    def test_store_root_collision_with_file_is_error(self, tmp_path):
        not_a_dir = tmp_path / "flat"
        not_a_dir.write_text("x")
        assert store_main(["ls", str(not_a_dir)]) == 2
