"""Resumable sweeps: kill a run mid-flight, rerun, replay bitwise.

The acceptance pin of the persistence layer: a ``Session(store=...)``
writes trained artifacts through to disk as they complete, so a killed
multi-strategy sweep restarted with ``--resume`` replays the completed
strategies from the store (``provenance.cache_hits`` records them) and
produces byte-identical ``RunResult`` metrics JSON vs an uninterrupted
run.  ``cache_hits`` itself necessarily differs between a resumed and
an uninterrupted run — it is provenance *about* caching — so the byte
pin is on the deterministic ``metrics`` payload.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.api import ExperimentSpec, Session
from repro.store import ArtifactStore

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

#: Three strategies, tiny geometry: enough work that a SIGTERM lands
#: mid-sweep, cheap enough for CI.
SWEEP = {
    "workload": "strategy_sweep",
    "dataset": {
        "num_sequences": 3,
        "frames_per_sequence": 6,
        "dynamics": "lively",
    },
    "strategy": {
        "names": ["Full+Random", "ROI+DS", "Ours (ROI+Random)"],
        "train_epochs": 2,
    },
    "training": {"train_indices": [0, 1]},
    "execution": {"eval_indices": [2]},
}


def _metrics_bytes(metrics: dict) -> bytes:
    return json.dumps(metrics, sort_keys=True).encode()


class TestSessionResume:
    """Session-level composition (no subprocess): store write-through,
    hydration, and whole-result reuse."""

    @pytest.fixture(scope="class")
    def reference(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("ref") / "store"
        with Session(store=root) as session:
            result = session.run(ExperimentSpec.from_dict(SWEEP))
        return root, result

    def test_first_run_writes_through_and_has_no_hits(self, reference):
        root, result = reference
        assert result.provenance["cache_hits"] == []
        kinds = sorted(r.kind for r in ArtifactStore(root).find())
        assert kinds.count("strategy_training") == 3
        assert "run_result" in kinds

    def test_fresh_session_replays_from_store_bitwise(self, reference):
        root, result = reference
        with Session(store=root) as session:
            replay = session.run(ExperimentSpec.from_dict(SWEEP))
            hits = replay.provenance["cache_hits"]
            assert [h["kind"] for h in hits] == ["strategy_training"] * 3
            assert {h["source"] for h in hits} == {"store"}
            assert session.stats()["store_hydrations"] == 3
            assert session.stats()["train_cache_misses"] == 0
        assert _metrics_bytes(replay.metrics) == _metrics_bytes(
            result.metrics
        )

    def test_resume_reuses_the_whole_run_result(self, reference):
        root, result = reference
        with Session(store=root, resume=True) as session:
            resumed = session.run(ExperimentSpec.from_dict(SWEEP))
            hits = resumed.provenance["cache_hits"]
            assert [h["kind"] for h in hits] == ["run_result"]
            assert session.stats()["train_cache_misses"] == 0
        assert _metrics_bytes(resumed.metrics) == _metrics_bytes(
            result.metrics
        )

    def test_without_resume_run_result_is_not_reused(self, reference):
        root, _ = reference
        with Session(store=root, resume=False) as session:
            rerun = session.run(ExperimentSpec.from_dict(SWEEP))
        # The workload re-executed (strategies hydrated, result rebuilt).
        kinds = [h["kind"] for h in rerun.provenance["cache_hits"]]
        assert kinds == ["strategy_training"] * 3

    def test_partial_store_computes_only_whats_missing(self, reference):
        root, result = reference
        store = ArtifactStore(root)
        victim = next(
            r for r in store.find(kind="strategy_training")
            if "ROI+DS" in json.dumps(r.key)
        )
        store.remove_prefix(victim.digest)
        # Drop the completed-run entry too, or resume-less replay still
        # hydrates everything it needs without retraining.
        for record in list(store.find(kind="run_result")):
            store.remove_prefix(record.digest)
        with Session(store=root) as session:
            replay = session.run(ExperimentSpec.from_dict(SWEEP))
            assert session.stats()["train_cache_misses"] == 1
            assert session.stats()["store_hydrations"] == 2
        assert _metrics_bytes(replay.metrics) == _metrics_bytes(
            result.metrics
        )


class TestKillAndResume:
    """The full pin: SIGTERM a sweep subprocess mid-run, rerun with
    ``--resume``, byte-compare against an uninterrupted run."""

    def test_sigterm_then_resume_is_byte_identical(self, tmp_path):
        spec_path = tmp_path / "sweep.json"
        spec_path.write_text(json.dumps(SWEEP))
        store = tmp_path / "store"
        out_json = tmp_path / "out.json"
        env = {**os.environ, "PYTHONPATH": REPO_SRC}
        cmd = [
            sys.executable, "-m", "repro.cli", "run", str(spec_path),
            "--store", str(store), "--json", str(out_json),
        ]

        proc = subprocess.Popen(
            cmd, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        # Kill as soon as the first trained strategy lands on disk, so
        # the sweep is genuinely mid-flight (some work durable, some
        # not).
        entries = store / "entries"
        deadline = time.monotonic() + 300  # repro: allow[REP102] subprocess watchdog
        while time.monotonic() < deadline:  # repro: allow[REP102] subprocess watchdog
            if entries.exists() and sorted(entries.glob("*.json")):
                break
            if proc.poll() is not None:
                break
            time.sleep(0.01)  # repro: allow[REP102] poll backoff for a subprocess
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=60)

        completed = sorted(
            r.kind for r in ArtifactStore(store).find()
        )
        assert "strategy_training" in completed, (
            "SIGTERM landed before any strategy completed — the sweep "
            "never became resumable"
        )
        if not out_json.exists():
            # The expected case: the run died mid-sweep.  (If the race
            # lost and it finished, the resume below still must replay
            # bitwise — just from a complete store.)
            assert "run_result" not in completed

        resume_cmd = [*cmd, "--resume"]
        done = subprocess.run(
            resume_cmd, env=env, capture_output=True, timeout=600
        )
        assert done.returncode == 0, done.stderr.decode()
        resumed = json.loads(out_json.read_text())

        # Uninterrupted reference against a fresh store.
        ref_store = tmp_path / "ref_store"
        ref_json = tmp_path / "ref.json"
        ref_cmd = [
            sys.executable, "-m", "repro.cli", "run", str(spec_path),
            "--store", str(ref_store), "--json", str(ref_json),
        ]
        ref = subprocess.run(
            ref_cmd, env=env, capture_output=True, timeout=600
        )
        assert ref.returncode == 0, ref.stderr.decode()
        reference = json.loads(ref_json.read_text())

        assert _metrics_bytes(resumed["metrics"]) == _metrics_bytes(
            reference["metrics"]
        )
        hits = resumed["provenance"]["cache_hits"]
        assert hits, "resumed run skipped nothing — nothing was reused"
        # Every completed strategy was replayed from the store, not
        # retrained.
        assert all(h["source"] == "store" for h in hits)
        names_hit = {
            h["key"][-1]
            for h in hits
            if h["kind"] == "strategy_training"
        }
        survivors = {
            json.loads(json.dumps(r.key))[-1]
            for r in ArtifactStore(store).find(kind="strategy_training")
        }
        assert names_hit <= survivors or any(
            h["kind"] == "run_result" for h in hits
        )
