"""Tests for sampling masks and the Fig. 15 strategy zoo."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling import (
    FullDownsample,
    FullRandom,
    ROIDownsample,
    ROIFixed,
    ROILearned,
    ROIRandom,
    SkipStrategy,
    apply_mask,
    effective_compression,
    random_mask,
    random_mask_in_box,
    uniform_grid_mask,
    uniform_mask_in_box,
)

RNG = np.random.default_rng(0)
SHAPE = (48, 48)


class TestMasks:
    def test_random_mask_rate(self):
        mask = random_mask((200, 200), 0.2, np.random.default_rng(1))
        assert abs(mask.mean() - 0.2) < 0.02

    def test_uniform_grid_rate(self):
        mask = uniform_grid_mask((100, 100), 0.25)
        assert abs(mask.mean() - 0.25) < 0.05

    def test_random_in_box_stays_in_box(self):
        box = (10, 10, 30, 30)
        mask = random_mask_in_box(SHAPE, box, 0.5, RNG)
        outside = mask.copy()
        outside[10:30, 10:30] = False
        assert not outside.any()
        assert mask[10:30, 10:30].mean() > 0.3

    def test_uniform_in_box_stays_in_box(self):
        box = (4, 8, 20, 40)
        mask = uniform_mask_in_box(SHAPE, box, 0.25)
        outside = mask.copy()
        outside[4:20, 8:40] = False
        assert not outside.any()
        assert mask.any()

    def test_apply_mask_zeroes(self):
        frame = np.ones(SHAPE)
        mask = np.zeros(SHAPE, dtype=bool)
        mask[0, 0] = True
        sparse = apply_mask(frame, mask)
        assert sparse.sum() == 1.0

    def test_effective_compression(self):
        mask = np.zeros((10, 10), dtype=bool)
        mask[:5, :2] = True  # 10 of 100
        assert effective_compression(mask) == pytest.approx(10.0)

    def test_empty_mask_infinite_compression(self):
        assert effective_compression(np.zeros((4, 4), dtype=bool)) == float("inf")

    @pytest.mark.parametrize("rate", [0.0, -0.1, 1.5])
    def test_invalid_rates_raise(self, rate):
        with pytest.raises(ValueError):
            random_mask(SHAPE, rate, RNG)


def _fixture_frame():
    rng = np.random.default_rng(3)
    frame = rng.random(SHAPE)
    event = rng.random(SHAPE) < 0.1
    box = (12, 12, 36, 36)
    return frame, event, box


class TestStrategies:
    @pytest.mark.parametrize(
        "cls", [FullRandom, FullDownsample, ROIDownsample, ROIRandom, ROILearned]
    )
    def test_compression_near_target(self, cls):
        frame, event, box = _fixture_frame()
        strategy = cls(compression=8.0)
        decision = strategy.sample(frame, event, box, np.random.default_rng(5))
        assert decision.transmitted_pixels > 0
        assert 4.0 < decision.compression < 20.0

    def test_roi_random_respects_roi(self):
        frame, event, box = _fixture_frame()
        decision = ROIRandom(8.0).sample(frame, event, box, RNG)
        outside = decision.mask.copy()
        outside[box[0] : box[2], box[1] : box[3]] = False
        assert not outside.any()

    def test_roi_strategies_fall_back_to_full_frame(self):
        frame, event, _ = _fixture_frame()
        decision = ROIRandom(8.0).sample(frame, event, None, RNG)
        assert decision.roi_box == (0, 0, *SHAPE)

    def test_full_random_ignores_roi(self):
        frame, event, box = _fixture_frame()
        decision = FullRandom(4.0).sample(frame, event, box, np.random.default_rng(7))
        outside = decision.mask.copy()
        outside[box[0] : box[2], box[1] : box[3]] = False
        assert outside.any()  # samples exist outside the ROI

    def test_skip_reuses_on_quiet_frames(self):
        frame, _, box = _fixture_frame()
        quiet = np.zeros(SHAPE, dtype=bool)
        strategy = SkipStrategy(compression=4.0)
        decision = strategy.sample(frame, quiet, box, RNG)
        assert decision.reuse_previous
        assert decision.transmitted_pixels == 0

    def test_skip_sends_on_active_frames(self):
        frame, _, box = _fixture_frame()
        busy = np.ones(SHAPE, dtype=bool)
        strategy = SkipStrategy(compression=4.0)
        decision = strategy.sample(frame, busy, box, RNG)
        assert not decision.reuse_previous
        assert decision.transmitted_pixels == frame.size

    def test_roi_fixed_requires_fit(self):
        frame, event, box = _fixture_frame()
        with pytest.raises(RuntimeError):
            ROIFixed(8.0).sample(frame, event, box, RNG)

    def test_roi_fixed_uses_statistics(self):
        frame, event, box = _fixture_frame()
        # Budget (2304/36 = 64) exactly matches the 8x8 always-foreground
        # region, so every selected pixel must lie inside it.
        strategy = ROIFixed(compression=36.0)
        fg = np.zeros((5, *SHAPE), dtype=bool)
        fg[:, 20:28, 20:28] = True  # foreground always in the center
        strategy.fit(fg)
        decision = strategy.sample(frame, event, box, RNG)
        rows, cols = np.nonzero(decision.mask)
        assert rows.min() >= 20 and rows.max() < 28
        assert cols.min() >= 20 and cols.max() < 28
        assert decision.transmitted_pixels == 64

    def test_roi_learned_budget_exact(self):
        frame, event, box = _fixture_frame()
        decision = ROILearned(compression=16.0).sample(frame, event, box, RNG)
        assert decision.transmitted_pixels <= round(frame.size / 16.0)

    def test_roi_learned_custom_scorer(self):
        frame, event, box = _fixture_frame()
        scores = np.zeros(SHAPE)
        scores[15, 15] = 10.0
        decision = ROILearned(
            compression=frame.size, scorer=lambda f, e: scores
        ).sample(frame, event, box, RNG)
        assert decision.mask[15, 15]

    def test_rejects_compression_below_one(self):
        with pytest.raises(ValueError):
            FullRandom(0.5)

    @given(compression=st.floats(2.0, 50.0))
    @settings(max_examples=20, deadline=None)
    def test_sparse_frame_zero_outside_mask(self, compression):
        frame, event, box = _fixture_frame()
        decision = ROIRandom(compression).sample(
            frame, event, box, np.random.default_rng(11)
        )
        assert np.all(decision.sparse_frame[~decision.mask] == 0)
        np.testing.assert_array_equal(
            decision.sparse_frame[decision.mask], frame[decision.mask]
        )


class TestSpawn:
    """Per-sequence strategy spawns (mirrors the sensor's spawn design)."""

    def test_stochastic_flags(self):
        assert FullRandom.stochastic
        assert ROIRandom.stochastic
        assert ROILearned.stochastic
        assert not FullDownsample.stochastic
        assert not ROIDownsample.stochastic
        assert not ROIFixed.stochastic
        assert not SkipStrategy.stochastic

    def test_spawn_keyed_streams_are_reproducible(self):
        frame, event, box = _fixture_frame()
        template = ROIRandom(8.0)
        a = template.spawn([42, 3])
        b = template.spawn([42, 3])
        other = template.spawn([42, 4])
        da = a.sample(frame, event, box, a.rng)
        db = b.sample(frame, event, box, b.rng)
        dc = other.sample(frame, event, box, other.rng)
        assert np.array_equal(da.mask, db.mask)  # same key, same stream
        assert not np.array_equal(da.mask, dc.mask)  # different sequence

    def test_spawn_does_not_touch_the_template(self):
        template = ROIRandom(8.0)
        assert template.rng is None
        clone = template.spawn(7)
        assert clone is not template
        assert clone.rng is not None
        assert template.rng is None

    def test_skip_spawn_resets_adaptive_state(self):
        frame, _, box = _fixture_frame()
        template = SkipStrategy(compression=4.0)
        # Drive the template's adaptive gate away from its initial state.
        busy = np.ones(SHAPE, dtype=bool)
        for _ in range(5):
            template.sample(frame, busy, box, RNG)
        clone = template.spawn([1, 0])
        assert clone._frames_seen == 0
        assert clone._frames_sent == 0
        assert template._frames_seen == 5  # template untouched

    def test_skip_spawned_clones_are_independent(self):
        frame, _, box = _fixture_frame()
        template = SkipStrategy(compression=4.0)
        a = template.spawn([1, 0])
        b = template.spawn([1, 1])
        busy = np.ones(SHAPE, dtype=bool)
        a.sample(frame, busy, box, a.rng)
        assert a._frames_sent == 1
        assert b._frames_sent == 0

    def test_roi_fixed_spawn_shares_fitted_map(self):
        template = ROIFixed(compression=36.0)
        fg = np.zeros((5, *SHAPE), dtype=bool)
        fg[:, 20:28, 20:28] = True
        template.fit(fg)
        clone = template.spawn([0, 0])
        assert clone._prob_map is template._prob_map  # fit-time state shared
        frame, event, box = _fixture_frame()
        decision = clone.sample(frame, event, box, clone.rng)
        assert decision.transmitted_pixels == 64


def _make_template(cls):
    if cls is ROIFixed:
        template = ROIFixed(compression=4.0)
        template.fit(np.random.default_rng(9).random((6, *SHAPE)) > 0.5)
        return template
    return cls(compression=4.0)


_ALL_STRATEGY_CLASSES = [
    FullRandom,
    FullDownsample,
    SkipStrategy,
    ROIDownsample,
    ROIFixed,
    ROILearned,
    ROIRandom,
]


class TestSampleBatch:
    """``sample_batch`` == a per-row ``sample`` loop, bitwise, per strategy.

    Two independent spawn sets with identical keys play the roles of the
    sequential and the lockstep run; several steps per rank verify that
    both RNG stream positions and adaptive state (SKIP's gate) advance
    identically.
    """

    B = 5
    STEPS = 3

    def _rank(self):
        rng = np.random.default_rng(17)
        frames = [rng.random(SHAPE) for _ in range(self.B)]
        events = [rng.random(SHAPE) > 0.9 for _ in range(self.B)]
        boxes = [
            (12, 12, 36, 36),
            None,
            (0, 0, *SHAPE),
            (5, 20, 30, 44),
            (8, 8, 40, 40),
        ]
        return frames, events, boxes

    @pytest.mark.parametrize("cls", _ALL_STRATEGY_CLASSES)
    def test_batch_matches_per_row_loop(self, cls):
        template = _make_template(cls)
        frames, events, boxes = self._rank()
        scalar = [template.spawn([7, i]) for i in range(self.B)]
        batched = [template.spawn([7, i]) for i in range(self.B)]
        for _ in range(self.STEPS):
            ref = [
                s.sample(f, e, b, s.rng)
                for s, f, e, b in zip(scalar, frames, events, boxes)
            ]
            got = template.sample_batch(batched, frames, events, boxes)
            for r, g in zip(ref, got):
                assert np.array_equal(r.mask, g.mask)
                assert np.array_equal(r.sparse_frame, g.sparse_frame)
                assert r.roi_box == g.roi_box
                assert r.reuse_previous == g.reuse_previous
                assert r.compression == g.compression

    def test_skip_batch_threads_adaptive_state(self):
        """A mixed quiet/busy rank must advance every spawn's gate the
        way the scalar loop would."""
        frames, _, boxes = self._rank()
        quiet = np.zeros(SHAPE, dtype=bool)
        busy = np.ones(SHAPE, dtype=bool)
        events = [quiet, busy, quiet, busy, busy]
        template = SkipStrategy(compression=4.0)
        scalar = [template.spawn([3, i]) for i in range(self.B)]
        batched = [template.spawn([3, i]) for i in range(self.B)]
        for _ in range(4):
            ref = [
                s.sample(f, e, b, s.rng)
                for s, f, e, b in zip(scalar, frames, events, boxes)
            ]
            got = template.sample_batch(batched, frames, events, boxes)
            for r, g, a, b in zip(ref, got, scalar, batched):
                assert r.reuse_previous == g.reuse_previous
                assert a._frames_seen == b._frames_seen
                assert a._frames_sent == b._frames_sent

    def test_custom_scorer_stays_per_row(self):
        """ROI+Learned with a plugged scorer keeps the per-frame scorer
        contract (one call per row) and still matches the scalar loop."""
        frames, events, boxes = self._rank()
        calls = []

        def scorer(frame, event_map):
            calls.append(frame.shape)
            return event_map.astype(np.float64)

        template = ROILearned(compression=4.0, scorer=scorer)
        scalar = [template.spawn([5, i]) for i in range(self.B)]
        batched = [template.spawn([5, i]) for i in range(self.B)]
        ref = [
            s.sample(f, e, b, s.rng)
            for s, f, e, b in zip(scalar, frames, events, boxes)
        ]
        calls.clear()
        got = template.sample_batch(batched, frames, events, boxes)
        assert len(calls) == self.B
        for r, g in zip(ref, got):
            assert np.array_equal(r.mask, g.mask)
