"""Tests for eventification (Eqn. 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling import DEFAULT_SIGMA, event_density, eventify


class TestEventify:
    def test_no_change_no_events(self):
        frame = np.random.default_rng(0).random((16, 16))
        assert not eventify(frame, frame).any()

    def test_large_change_triggers_event(self):
        prev = np.zeros((8, 8))
        cur = np.zeros((8, 8))
        cur[3, 4] = 0.5
        events = eventify(prev, cur)
        assert events[3, 4]
        assert events.sum() == 1

    def test_bipolar_thresholds(self):
        """Both +sigma and -sigma changes produce events (Fig. 10, Vth1/Vth2)."""
        prev = np.full((4, 4), 0.5)
        cur = prev.copy()
        cur[0, 0] += 0.2
        cur[1, 1] -= 0.2
        events = eventify(prev, cur)
        assert events[0, 0] and events[1, 1]

    def test_sub_threshold_change_ignored(self):
        prev = np.zeros((4, 4))
        cur = np.full((4, 4), DEFAULT_SIGMA * 0.9)
        assert not eventify(prev, cur).any()

    def test_default_sigma_matches_paper(self):
        # sigma = 15 on the 8-bit scale.
        assert DEFAULT_SIGMA == pytest.approx(15 / 255)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            eventify(np.zeros((4, 4)), np.zeros((4, 5)))

    def test_negative_sigma_raises(self):
        with pytest.raises(ValueError):
            eventify(np.zeros((2, 2)), np.zeros((2, 2)), sigma=-0.1)

    @given(sigma=st.floats(0.0, 0.5))
    @settings(max_examples=25, deadline=None)
    def test_event_count_monotone_in_sigma(self, sigma):
        rng = np.random.default_rng(1)
        prev, cur = rng.random((12, 12)), rng.random((12, 12))
        tight = eventify(prev, cur, sigma=sigma)
        loose = eventify(prev, cur, sigma=sigma + 0.1)
        # Raising the threshold can only remove events.
        assert not (loose & ~tight).any()

    def test_moving_eye_produces_localized_events(self):
        """Events concentrate on the moving foreground in synthetic frames."""
        from repro.synth import EyeGeometry, EyeRenderer, EyeState

        rng = np.random.default_rng(0)
        renderer = EyeRenderer(EyeGeometry(), 64, 64, rng)
        a = renderer.render(EyeState(gaze_h=0.0))
        b = renderer.render(EyeState(gaze_h=12.0))
        events = eventify(a.image, b.image)
        assert events.any()
        # Every event lies inside the union of the two foregrounds (background
        # is static by construction).
        fg = (a.segmentation != 0) | (b.segmentation != 0)
        assert np.all(fg[events])


class TestEventDensity:
    def test_density_range(self):
        events = np.zeros((10, 10), dtype=bool)
        events[:5] = True
        assert event_density(events) == pytest.approx(0.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            event_density(np.zeros((0,), dtype=bool))
