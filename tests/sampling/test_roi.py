"""Tests for ROI box utilities, the ROI predictor, and reuse policy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling import (
    ROIPredictor,
    ROIReusePolicy,
    box_area,
    box_from_pixels,
    box_iou,
    box_mask,
    box_to_pixels,
    expand_box,
    order_box,
)

RNG = np.random.default_rng(0)


class TestBoxUtils:
    def test_order_box_sorts_corners(self):
        np.testing.assert_array_equal(
            order_box(np.array([0.8, 0.9, 0.2, 0.1])), [0.2, 0.1, 0.8, 0.9]
        )

    def test_box_to_pixels_clips(self):
        box = np.array([-0.5, -0.5, 1.5, 1.5])
        assert box_to_pixels(box, 32, 64) == (0, 0, 32, 64)

    def test_box_to_pixels_degenerate_becomes_one_pixel(self):
        box = np.array([0.5, 0.5, 0.5, 0.5])
        r0, c0, r1, c1 = box_to_pixels(box, 32, 32)
        assert r1 - r0 >= 1 and c1 - c0 >= 1

    @given(
        r0=st.floats(0, 0.9),
        c0=st.floats(0, 0.9),
        dr=st.floats(0.05, 0.5),
        dc=st.floats(0.05, 0.5),
    )
    @settings(max_examples=40, deadline=None)
    def test_pixel_roundtrip_contains_original(self, r0, c0, dr, dc):
        """Pixel conversion (floor/ceil) never shrinks the normalized box."""
        box = np.array([r0, c0, min(r0 + dr, 1.0), min(c0 + dc, 1.0)])
        pix = box_to_pixels(box, 64, 64)
        back = box_from_pixels(pix, 64, 64)
        assert back[0] <= box[0] + 1e-9 and back[1] <= box[1] + 1e-9
        assert back[2] >= box[2] - 1e-9 and back[3] >= box[3] - 1e-9

    def test_iou_identity_and_disjoint(self):
        a = (0, 0, 10, 10)
        assert box_iou(a, a) == pytest.approx(1.0)
        assert box_iou(a, (20, 20, 30, 30)) == 0.0

    def test_iou_half_overlap(self):
        assert box_iou((0, 0, 10, 10), (0, 5, 10, 15)) == pytest.approx(1 / 3)

    def test_box_mask_and_area_agree(self):
        box = (2, 3, 10, 12)
        mask = box_mask(box, 16, 16)
        assert mask.sum() == box_area(box)

    def test_expand_box_clips_to_frame(self):
        assert expand_box((0, 0, 4, 4), 3, 16, 16) == (0, 0, 7, 7)
        assert expand_box((10, 10, 16, 16), 3, 16, 16) == (7, 7, 16, 16)


class TestROIPredictor:
    def test_output_is_valid_box(self):
        net = ROIPredictor(32, 32, RNG, base_channels=2)
        event = RNG.random((32, 32)) < 0.1
        box = net.predict_box(event, None)
        assert box.shape == (4,)
        assert np.all(box >= 0) and np.all(box <= 1)
        assert box[0] <= box[2] and box[1] <= box[3]

    def test_accepts_prev_segmentation(self):
        net = ROIPredictor(32, 32, RNG, base_channels=2)
        event = RNG.random((32, 32)) < 0.1
        seg = RNG.integers(0, 4, size=(32, 32))
        box_a = net.predict_box(event, None)
        box_b = net.predict_box(event, seg)
        # The corrective cue must actually reach the network.
        assert not np.allclose(box_a, box_b)

    def test_mac_count_scale(self):
        """At the paper's 640x400 with base 8 channels, MACs are O(2e7)."""
        net = ROIPredictor(400, 640, np.random.default_rng(1), base_channels=4)
        assert 5e6 < net.mac_count() < 8e7

    def test_rejects_indivisible_resolution(self):
        with pytest.raises(ValueError):
            ROIPredictor(30, 30, RNG)

    def test_trainable_toward_target_box(self):
        from repro.nn import Adam, MSELoss

        net = ROIPredictor(16, 16, RNG, base_channels=2)
        event = (RNG.random((16, 16)) < 0.2).astype(float)
        x = ROIPredictor.make_input(event, None)
        target = np.array([[0.2, 0.3, 0.7, 0.8]])
        loss_fn = MSELoss()
        opt = Adam(net.parameters(), lr=3e-3)
        first = loss_fn.forward(net(x), target)
        for _ in range(30):
            net.zero_grad()
            loss_fn.forward(net(x), target)
            net.backward(loss_fn.backward())
            opt.step()
        last = loss_fn.forward(net(x), target)
        assert last < first * 0.5


class TestROIReusePolicy:
    def test_window_one_always_predicts(self):
        policy = ROIReusePolicy(window=1)
        assert policy.should_predict()
        policy.update(np.array([0, 0, 1, 1]))
        assert policy.should_predict()

    def test_window_four_reuses_three_times(self):
        policy = ROIReusePolicy(window=4)
        policy.update(np.array([0.1, 0.1, 0.9, 0.9]))
        predictions = 0
        for _ in range(8):
            if policy.should_predict():
                policy.update(np.array([0.1, 0.1, 0.9, 0.9]))
                predictions += 1
            else:
                policy.tick()
        assert predictions == 2  # frames 0 and 4 (the initial update was frame -1)

    def test_current_before_update_raises(self):
        with pytest.raises(RuntimeError):
            ROIReusePolicy(window=2).current()

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            ROIReusePolicy(window=0)

    def test_reset_clears_cache(self):
        policy = ROIReusePolicy(window=8)
        policy.update(np.array([0, 0, 1, 1]))
        policy.reset()
        assert policy.should_predict()


class TestBatchInvariance:
    """The ROI predictor's batch-invariance contract (bitwise).

    The conv layers are row-independent GEMMs (one fixed-shape matmul per
    sample, see ``Conv2d.forward``) and the batched box predictor runs
    its FC tail per-row, so stacking frames into one forward must produce
    bit-identical boxes to the per-frame loop — the contract the staged
    engine's batched ROI-predict path is built on.
    """

    def test_conv_forward_batch_invariant(self):
        from repro import nn

        rng = np.random.default_rng(0)
        conv = nn.Conv2d(2, 8, kernel_size=3, rng=rng, stride=2, padding=1)
        x = rng.random((7, 2, 16, 16))
        stacked = conv(x)
        for b in range(x.shape[0]):
            solo = conv(x[b : b + 1])
            assert np.array_equal(stacked[b], solo[0]), f"sample {b} diverged"

    def test_predict_box_batch_matches_per_frame(self):
        rng = np.random.default_rng(5)
        predictor = ROIPredictor(32, 32, rng, base_channels=4)
        events = [rng.random((32, 32)) < 0.1 for _ in range(5)]
        segs = [
            None,
            rng.integers(0, 4, size=(32, 32)),
            None,
            rng.integers(0, 4, size=(32, 32)),
            rng.integers(0, 4, size=(32, 32)),
        ]
        batched = predictor.predict_box_batch(events, segs)
        for i, (event, seg) in enumerate(zip(events, segs)):
            solo = predictor.predict_box(event, seg)
            assert np.array_equal(batched[i], solo), f"frame {i} diverged"
