"""Tests for the Kalman gaze filter extension."""

import numpy as np
import pytest

from repro.gaze.filtering import FilterConfig, KalmanGazeFilter


def noisy_fixation(n=120, level=(5.0, -3.0), noise=0.5, seed=0):
    rng = np.random.default_rng(seed)
    return np.array(level) + rng.normal(0, noise, size=(n, 2))


class TestKalmanGazeFilter:
    def test_first_update_passes_through(self):
        filt = KalmanGazeFilter(fps=120)
        assert filt.update((3.0, -2.0)) == (3.0, -2.0)

    def test_smooths_fixation_jitter(self):
        """During a fixation the filtered trace has lower error than raw."""
        trace = noisy_fixation()
        filt = KalmanGazeFilter(fps=120)
        filtered = filt.filter_sequence(trace)
        truth = np.array([5.0, -3.0])
        raw_err = np.abs(trace[30:] - truth).mean()
        filt_err = np.abs(filtered[30:] - truth).mean()
        assert filt_err < 0.6 * raw_err

    def test_tracks_saccade_without_lag(self):
        """The saccade gate keeps step-response lag to ~1 frame."""
        before = np.tile([0.0, 0.0], (30, 1))
        after = np.tile([15.0, 0.0], (30, 1))
        trace = np.vstack([before, after])
        filt = KalmanGazeFilter(fps=120)
        filtered = filt.filter_sequence(trace)
        # One frame after the jump the estimate is already at the target.
        assert filtered[31, 0] == pytest.approx(15.0, abs=1.0)

    def test_tracks_smooth_pursuit(self):
        fps = 120
        t = np.arange(60) / fps
        trace = np.stack([20.0 * t, np.zeros_like(t)], axis=1)  # 20 deg/s
        filt = KalmanGazeFilter(fps=fps)
        filtered = filt.filter_sequence(trace)
        # After convergence the lag is a fraction of a degree.
        assert np.abs(filtered[40:, 0] - trace[40:, 0]).max() < 0.5

    def test_reset_forgets_state(self):
        filt = KalmanGazeFilter(fps=120)
        filt.update((10.0, 10.0))
        filt.reset()
        assert filt.update((0.0, 0.0)) == (0.0, 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            KalmanGazeFilter(fps=0)
        with pytest.raises(ValueError):
            FilterConfig(acceleration_rms=0)
        with pytest.raises(ValueError):
            FilterConfig(saccade_gate_sigma=-1)
        filt = KalmanGazeFilter(fps=120)
        with pytest.raises(ValueError):
            filt.update((1.0, 2.0, 3.0))
        with pytest.raises(ValueError):
            filt.filter_sequence(np.zeros((5, 3)))

    def test_end_to_end_improvement_on_synthetic_trace(self):
        """Filtering a jittery tracker's output reduces fixation error
        without breaking saccade tracking."""
        rng = np.random.default_rng(7)
        fps = 120
        # Truth: fixation, saccade, fixation.
        truth = np.vstack(
            [
                np.tile([0.0, 0.0], (40, 1)),
                np.tile([12.0, -6.0], (40, 1)),
            ]
        )
        measured = truth + rng.normal(0, 0.8, size=truth.shape)
        filt = KalmanGazeFilter(fps=fps)
        filtered = filt.filter_sequence(measured)
        raw_err = np.abs(measured - truth).mean()
        filt_err = np.abs(filtered - truth).mean()
        assert filt_err < raw_err
