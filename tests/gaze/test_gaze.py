"""Tests for gaze estimation and angular-error metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gaze import (
    AngularErrorStats,
    FittedGazeEstimator,
    GeometricGazeEstimator,
    angular_errors,
    gaze_vector,
    pupil_centroid,
    vector_angle_deg,
)
from repro.synth import EyeGeometry, EyeRenderer, EyeState, SEG_CLASSES


def rendered(gaze_h=0.0, gaze_v=0.0, size=64):
    rng = np.random.default_rng(0)
    renderer = EyeRenderer(EyeGeometry(), size, size, rng)
    return renderer.render(EyeState(gaze_h=gaze_h, gaze_v=gaze_v))


class TestPupilCentroid:
    def test_centroid_matches_geometry(self):
        frame = rendered(gaze_h=8.0, gaze_v=-5.0)
        centroid = pupil_centroid(frame.segmentation)
        geo = EyeGeometry()
        expected = geo.pupil_center(8.0, -5.0)
        assert centroid[0] == pytest.approx(expected[0], abs=0.05)
        assert centroid[1] == pytest.approx(expected[1], abs=0.05)

    def test_iris_fallback(self):
        seg = np.zeros((32, 32), dtype=int)
        seg[10:20, 10:20] = SEG_CLASSES["iris"]
        centroid = pupil_centroid(seg)
        assert centroid is not None

    def test_none_when_occluded(self):
        assert pupil_centroid(np.zeros((32, 32), dtype=int)) is None


class TestGeometricEstimator:
    @given(gaze_h=st.floats(-12, 12), gaze_v=st.floats(-10, 10))
    @settings(max_examples=20, deadline=None)
    def test_recovers_gaze_from_ground_truth_segmentation(self, gaze_h, gaze_v):
        frame = rendered(gaze_h=gaze_h, gaze_v=gaze_v)
        estimator = GeometricGazeEstimator(EyeGeometry())
        pred_h, pred_v = estimator.predict(frame.segmentation)
        assert pred_h == pytest.approx(gaze_h, abs=2.0)
        assert pred_v == pytest.approx(gaze_v, abs=2.0)

    def test_blink_returns_last_estimate(self):
        estimator = GeometricGazeEstimator(EyeGeometry())
        frame = rendered(gaze_h=10.0)
        first = estimator.predict(frame.segmentation)
        blank = np.zeros_like(frame.segmentation)
        assert estimator.predict(blank) == first


class TestFittedEstimator:
    def test_fit_and_predict(self):
        rng = np.random.default_rng(1)
        renderer = EyeRenderer(EyeGeometry(), 64, 64, rng)
        gazes, segs = [], []
        for gh in (-10, -5, 0, 5, 10):
            for gv in (-8, 0, 8):
                frame = renderer.render(EyeState(gaze_h=gh, gaze_v=gv))
                segs.append(frame.segmentation)
                gazes.append((gh, gv))
        est = FittedGazeEstimator()
        est.fit(np.stack(segs), np.array(gazes, dtype=float))
        frame = renderer.render(EyeState(gaze_h=7.0, gaze_v=-4.0))
        pred_h, pred_v = est.predict(frame.segmentation)
        assert pred_h == pytest.approx(7.0, abs=1.5)
        assert pred_v == pytest.approx(-4.0, abs=1.5)

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            FittedGazeEstimator().predict(np.zeros((8, 8), dtype=int))

    def test_fit_needs_visible_pupils(self):
        est = FittedGazeEstimator()
        with pytest.raises(ValueError):
            est.fit(np.zeros((5, 8, 8), dtype=int), np.zeros((5, 2)))


class TestMetrics:
    def test_angular_errors_basic(self):
        pred = np.array([[1.0, 2.0], [3.0, 4.0]])
        truth = np.array([[0.0, 0.0], [0.0, 0.0]])
        horizontal, vertical = angular_errors(pred, truth)
        assert horizontal.mean == pytest.approx(2.0)
        assert vertical.mean == pytest.approx(3.0)

    def test_stats_fields(self):
        stats = AngularErrorStats.from_errors(np.array([1.0, 2.0, 3.0]))
        assert stats.median == 2.0
        assert stats.count == 3
        assert stats.std == pytest.approx(np.std([1, 2, 3]))

    def test_empty_errors_raise(self):
        with pytest.raises(ValueError):
            AngularErrorStats.from_errors(np.array([]))

    def test_bad_shapes_raise(self):
        with pytest.raises(ValueError):
            angular_errors(np.zeros((3, 2)), np.zeros((4, 2)))

    def test_gaze_vector_is_unit(self):
        vec = gaze_vector(15.0, -10.0)
        assert np.linalg.norm(vec) == pytest.approx(1.0)

    def test_vector_angle_zero_for_same_direction(self):
        assert vector_angle_deg((5.0, 5.0), (5.0, 5.0)) == pytest.approx(0.0)

    def test_vector_angle_simple(self):
        assert vector_angle_deg((10.0, 0.0), (0.0, 0.0)) == pytest.approx(
            10.0, abs=1e-6
        )
