"""Strategy-sweep fan-out: parallel across strategies == serial sweep.

Per-strategy training/RNG streams are process-independent
(``strategy_rng`` keys them by name), so fanning the sweep out over the
session pool must be bitwise-identical to the serial loop — this test
pins it, and checks the cache interplay (fan-out counts trainings,
cache hits replay in-process).
"""

import pytest

from repro.api import ExperimentSpec, Session

SWEEP = {
    "workload": "strategy_sweep",
    "dataset": {
        "num_sequences": 3,
        "frames_per_sequence": 6,
        "dynamics": "lively",
    },
    "strategy": {
        "names": ["Full+Random", "ROI+DS"],
        "train_epochs": 1,
    },
    "training": {"train_indices": [0, 1]},
    "execution": {"eval_indices": [2]},
}


@pytest.fixture(scope="module")
def results():
    with Session() as serial_session:
        serial = serial_session.run(ExperimentSpec.from_dict(SWEEP))
    with Session() as fanned_session:
        fanned_spec = ExperimentSpec.from_dict(
            {**SWEEP, "execution": {**SWEEP["execution"], "workers": 2}}
        )
        fanned = fanned_session.run(fanned_spec)
        stats = dict(fanned_session.stats())
        rerun = fanned_session.run(fanned_spec)
        stats_after = dict(fanned_session.stats())
    return serial, fanned, rerun, stats, stats_after


def test_fanned_sweep_bitwise_identical_to_serial(results):
    serial, fanned, _, _, _ = results
    assert fanned.metrics == serial.metrics


def test_fanout_counts_trainings_and_caches_them(results):
    _, fanned, rerun, stats, stats_after = results
    assert stats["train_cache_misses"] == 2  # one per fanned strategy
    # The cached triples replay in-process, bitwise.
    assert stats_after["train_cache_misses"] == 2
    assert stats_after["train_cache_hits"] >= stats["train_cache_hits"] + 2
    assert rerun.metrics == fanned.metrics
