"""ExperimentSpec: round-trip fidelity and field-naming validation."""

import dataclasses
import json

import pytest

from repro.api import (
    DatasetSection,
    ExecutionSection,
    ExperimentSpec,
    SpecError,
    StrategySection,
)


def _full_spec() -> ExperimentSpec:
    """A spec with every section away from its defaults."""
    return ExperimentSpec.from_dict(
        {
            "workload": "strategy_sweep",
            "dataset": {
                "preset": "ci",
                "num_sequences": 6,
                "frames_per_sequence": 8,
                "fps": 60.0,
                "seed": 3,
                "eye_scale": 0.7,
                "dynamics": "lively",
                "noise": {
                    "electrons_per_second_full_scale": 240000.0,
                    "read_noise_electrons": 5.0,
                    "bit_depth": 8,
                },
            },
            "sensor": {
                "compression": 12.5,
                "roi_margin_px": 2,
                "sensor_seed": 99,
                "reuse_window": 3,
            },
            "strategy": {
                "names": ["Skip", "Ours (ROI+Random)"],
                "compression": 8.0,
                "train_epochs": 2,
                "seed": 7,
                "use_gt_roi": False,
            },
            "training": {"epochs": 3, "train_indices": [0, 1, 2]},
            "execution": {
                "workers": 2,
                "batched": True,
                "batch_size": 4,
                "repeats": 2,
                "eval_indices": [3, 4, 5],
                "fps": 240.0,
                "serve": {
                    "num_clients": 8,
                    "arrival": "poisson",
                    "duration_ticks": 20,
                    "deadline_policy": "best_effort",
                    "max_batch": 4,
                    "queue_capacity": 16,
                    "deadline_slack_ticks": 2,
                    "seed": 5,
                },
            },
        }
    )


class TestRoundTrip:
    def test_dict_round_trip_identity(self):
        spec = _full_spec()
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip_identity(self):
        spec = _full_spec()
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_defaults_round_trip(self):
        spec = ExperimentSpec()
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_to_dict_is_plain_json(self):
        # No tuples or dataclasses may leak into the serialized form.
        text = json.dumps(_full_spec().to_dict())
        assert json.loads(text) == _full_spec().to_dict()

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "spec.json"
        spec = _full_spec()
        path.write_text(spec.to_json())
        assert ExperimentSpec.from_file(path) == spec

    def test_spec_hash_stable_and_sensitive(self):
        assert _full_spec().spec_hash() == _full_spec().spec_hash()
        other = dataclasses.replace(
            _full_spec(), dataset=DatasetSection(seed=999)
        )
        assert other.spec_hash() != _full_spec().spec_hash()

    def test_section_hash_ignores_other_sections(self):
        spec = _full_spec()
        moved = dataclasses.replace(
            spec, execution=ExecutionSection(workers=8)
        )
        key = ("dataset", "sensor", "training")
        assert spec.section_hash(*key) == moved.section_hash(*key)
        assert spec.spec_hash() != moved.spec_hash()


class TestValidation:
    def test_unknown_top_level_key_named(self):
        with pytest.raises(SpecError, match="datasett: unknown field"):
            ExperimentSpec.from_dict({"datasett": {}})

    def test_unknown_nested_key_named_with_suggestion(self):
        with pytest.raises(SpecError) as err:
            ExperimentSpec.from_dict({"execution": {"workerz": 2}})
        assert err.value.field == "execution.workerz"
        assert "did you mean 'workers'" in str(err.value)

    def test_unknown_workload_lists_choices(self):
        with pytest.raises(SpecError, match="unknown workload 'bogus'"):
            ExperimentSpec.from_dict({"workload": "bogus"})

    def test_nested_section_unknown_key_named_with_suggestion(self):
        with pytest.raises(SpecError) as err:
            ExperimentSpec.from_dict(
                {"execution": {"serve": {"num_client": 2}}}
            )
        assert err.value.field == "execution.serve.num_client"
        assert "did you mean 'num_clients'" in str(err.value)

    def test_serve_enums_validated(self):
        with pytest.raises(SpecError, match="execution.serve.arrival"):
            ExperimentSpec.from_dict(
                {"execution": {"serve": {"arrival": "bursty"}}}
            )
        with pytest.raises(
            SpecError, match="execution.serve.deadline_policy"
        ):
            ExperimentSpec.from_dict(
                {"execution": {"serve": {"deadline_policy": "maybe"}}}
            )

    def test_serve_ranges_validated(self):
        for field, bad in (
            ("num_clients", 0),
            ("duration_ticks", 1),
            ("max_batch", 0),
            ("queue_capacity", 0),
            ("deadline_slack_ticks", -1),
        ):
            with pytest.raises(SpecError, match=f"execution.serve.{field}"):
                ExperimentSpec.from_dict(
                    {"execution": {"serve": {field: bad}}}
                )

    def test_noise_ranges_validated(self):
        for field, bad in (
            ("electrons_per_second_full_scale", 0.0),
            ("read_noise_electrons", -1.0),
            ("bit_depth", 0),
        ):
            with pytest.raises(SpecError, match=f"dataset.noise.{field}"):
                ExperimentSpec.from_dict(
                    {"dataset": {"noise": {field: bad}}}
                )

    def test_nested_section_must_be_object(self):
        with pytest.raises(SpecError, match="dataset.noise"):
            ExperimentSpec.from_dict({"dataset": {"noise": 3}})

    def test_unknown_strategy_named_by_index(self):
        with pytest.raises(SpecError) as err:
            ExperimentSpec.from_dict(
                {"strategy": {"names": ["Skip", "Nope"]}}
            )
        assert err.value.field == "strategy.names[1]"

    def test_bad_enum_preset(self):
        with pytest.raises(SpecError, match="dataset.preset"):
            ExperimentSpec.from_dict({"dataset": {"preset": "huge"}})

    def test_bad_dynamics_preset(self):
        with pytest.raises(SpecError, match="dataset.dynamics"):
            ExperimentSpec.from_dict({"dataset": {"dynamics": "frantic"}})

    def test_wrong_type_named(self):
        with pytest.raises(SpecError, match="dataset.num_sequences"):
            ExperimentSpec.from_dict({"dataset": {"num_sequences": "four"}})
        with pytest.raises(SpecError, match="execution.batched"):
            ExperimentSpec.from_dict({"execution": {"batched": 1}})

    def test_int_widens_to_float_but_not_reverse(self):
        spec = ExperimentSpec.from_dict({"dataset": {"fps": 90}})
        assert spec.dataset.fps == 90.0
        with pytest.raises(SpecError, match="dataset.seed"):
            ExperimentSpec.from_dict({"dataset": {"seed": 1.5}})

    def test_out_of_range_values_named(self):
        with pytest.raises(SpecError, match="execution.workers"):
            ExperimentSpec.from_dict({"execution": {"workers": 0}})
        with pytest.raises(SpecError, match="sensor.compression"):
            ExperimentSpec.from_dict({"sensor": {"compression": 0.5}})
        with pytest.raises(SpecError, match="training.epochs"):
            ExperimentSpec.from_dict({"training": {"epochs": 0}})

    def test_negative_seeds_rejected_at_the_boundary(self):
        # REP106 regression: seeds key default_rng([seed, tag, ...])
        # streams, where a negative entry detonates deep inside numpy
        # with no field name.  validate() must catch it at the boundary.
        for section, field in (
            ("dataset", "seed"),
            ("sensor", "sensor_seed"),
            ("strategy", "seed"),
        ):
            with pytest.raises(SpecError, match=f"{section}.{field}"):
                ExperimentSpec.from_dict({section: {field: -1}})
        with pytest.raises(SpecError, match="execution.serve.seed"):
            ExperimentSpec.from_dict(
                {"execution": {"serve": {"seed": -1}}}
            )

    def test_zero_seed_is_valid(self):
        spec = ExperimentSpec.from_dict({"dataset": {"seed": 0}})
        assert spec.dataset.seed == 0

    def test_empty_indices_rejected(self):
        with pytest.raises(SpecError, match="execution.eval_indices"):
            ExperimentSpec.from_dict({"execution": {"eval_indices": []}})

    def test_indices_range_checked_against_dataset(self):
        # Explicit num_sequences bounds the indices...
        with pytest.raises(SpecError, match=r"eval_indices\[1\].*out of range"):
            ExperimentSpec.from_dict(
                {
                    "dataset": {"num_sequences": 3},
                    "execution": {"eval_indices": [2, 50]},
                }
            )
        # ...and so does the preset default (ci = 4 sequences).
        with pytest.raises(SpecError, match=r"train_indices\[0\]"):
            ExperimentSpec.from_dict({"training": {"train_indices": [4]}})
        with pytest.raises(SpecError, match=r"eval_indices\[0\]"):
            ExperimentSpec.from_dict({"execution": {"eval_indices": [-1]}})

    def test_fps_sweep_points_validated(self):
        spec = ExperimentSpec.from_dict(
            {"execution": {"fps_sweep_points": [30, 90.5]}}
        )
        assert spec.execution.fps_sweep_points == (30.0, 90.5)
        with pytest.raises(SpecError, match=r"fps_sweep_points\[1\]"):
            ExperimentSpec.from_dict(
                {"execution": {"fps_sweep_points": [30, 0]}}
            )
        with pytest.raises(SpecError, match="fps_sweep_points"):
            ExperimentSpec.from_dict({"execution": {"fps_sweep_points": []}})

    def test_invalid_json_text(self):
        with pytest.raises(SpecError, match="invalid JSON"):
            ExperimentSpec.from_json("{not json")

    def test_direct_construction_validates_on_run_entry(self):
        # validate() is also the Session.run entry check.
        spec = ExperimentSpec(strategy=StrategySection(names=("Nope",)))
        with pytest.raises(SpecError, match="strategy.names"):
            spec.validate()

    def test_blink_rate_validated(self):
        spec = ExperimentSpec.from_dict({"dataset": {"blink_rate_hz": 2.0}})
        assert spec.dataset.blink_rate_hz == 2.0
        with pytest.raises(SpecError, match="dataset.blink_rate_hz"):
            ExperimentSpec.from_dict({"dataset": {"blink_rate_hz": -1.0}})

    def test_with_workers_override(self):
        spec = ExperimentSpec()
        assert spec.with_workers(None) == spec
        assert spec.with_workers(4).execution.workers == 4
        # The rest of the spec is untouched.
        assert spec.with_workers(4).dataset == spec.dataset
