"""Session runtime: memoized training, the persistent pool, provenance."""

import numpy as np
import pytest

from repro.api import ExperimentSpec, Session, SpecError
from repro.engine import SequenceRunner, Stage

#: The cheapest spec that exercises training + evaluation.
TINY = {
    "workload": "evaluate",
    "dataset": {"num_sequences": 3, "frames_per_sequence": 6},
    "training": {"epochs": 1},
}


@pytest.fixture(scope="module")
def tiny_session():
    with Session() as session:
        session.run(ExperimentSpec.from_dict(TINY))
        yield session


class TestMemoization:
    def test_second_run_does_not_retrain(self, tiny_session):
        before = dict(tiny_session.stats())
        result = tiny_session.run(ExperimentSpec.from_dict(TINY))
        assert (
            tiny_session.stats()["train_cache_misses"]
            == before["train_cache_misses"]
        )
        assert (
            tiny_session.stats()["train_cache_hits"]
            == before["train_cache_hits"] + 1
        )
        assert result.metrics["frames"] > 0

    def test_same_training_hash_shares_pipeline(self, tiny_session):
        # A spec differing only in execution mode reuses the trained
        # pipeline (training-relevant section hash is unchanged).
        batched = ExperimentSpec.from_dict(
            {**TINY, "execution": {"batched": True}}
        )
        before = tiny_session.stats()["train_cache_misses"]
        tiny_session.run(batched)
        assert tiny_session.stats()["train_cache_misses"] == before

    def test_changed_training_section_retrains(self, tiny_session):
        different = ExperimentSpec.from_dict(
            {**TINY, "dataset": {**TINY["dataset"], "seed": 5}}
        )
        before = tiny_session.stats()["train_cache_misses"]
        tiny_session.run(different)
        assert tiny_session.stats()["train_cache_misses"] == before + 1

    def test_repeat_runs_bitwise_identical(self, tiny_session):
        spec = ExperimentSpec.from_dict(TINY)
        a = tiny_session.run(spec)
        b = tiny_session.run(spec)
        assert a.metrics == b.metrics


class TestSystemConfig:
    def test_paper_preset_keeps_sec_v_geometry(self):
        from repro.api.session import system_config
        from repro.core import paper

        spec = ExperimentSpec.from_dict({"dataset": {"preset": "paper"}})
        config = system_config(spec)
        reference = paper()
        assert config.dataset.num_sequences == reference.dataset.num_sequences
        assert (
            config.dataset.frames_per_sequence
            == reference.dataset.frames_per_sequence
        )
        assert config.joint.epochs == reference.joint.epochs
        assert config.height == 400 and config.width == 640

    def test_explicit_fields_override_paper_preset(self):
        from repro.api.session import system_config

        spec = ExperimentSpec.from_dict(
            {"dataset": {"preset": "paper", "num_sequences": 2}}
        )
        config = system_config(spec)
        assert config.dataset.num_sequences == 2
        assert config.dataset.frames_per_sequence == 60  # preset kept

    def test_blink_rate_override_composes_with_dynamics_preset(self):
        from repro.api.session import LIVELY_DYNAMICS, system_config

        spec = ExperimentSpec.from_dict(
            {"dataset": {"dynamics": "lively", "blink_rate_hz": 2.0}}
        )
        dynamics = system_config(spec).dataset.dynamics
        assert dynamics.blink_rate_hz == 2.0
        assert dynamics.fixation_mean_s == LIVELY_DYNAMICS.fixation_mean_s

    def test_eval_only_sensor_fields_do_not_retrain(self, tiny_session):
        # sensor_seed and reuse_window are applied at evaluate() time;
        # they must hit the training cache, not rebuild it.
        before = tiny_session.stats()["train_cache_misses"]
        tiny_session.run(
            ExperimentSpec.from_dict(
                {**TINY, "sensor": {"sensor_seed": 77, "reuse_window": 2}}
            )
        )
        assert tiny_session.stats()["train_cache_misses"] == before


class Probe(Stage):
    name = "probe"

    def process(self, ctx, seq):
        ctx.gaze_pred = (float(ctx.seq_index), float(ctx.t))


class Seq:
    frames = np.zeros((3, 4, 4))


class TestPersistentPool:
    def test_no_pool_below_two_workers(self):
        with Session() as session:
            assert session.executor(1) is None
            assert session.stats()["pools_created"] == 0

    def test_pool_created_once_and_reused(self):
        with Session() as session:
            first = session.executor(2)
            second = session.executor(2)
            assert first is second
            assert session.stats()["pools_created"] == 1

    def test_pool_grows_for_more_workers(self):
        with Session() as session:
            small = session.executor(2)
            grown = session.executor(3)
            assert grown is not small
            # Asking for fewer workers keeps the bigger pool.
            assert session.executor(2) is grown
            assert session.stats()["pools_created"] == 2

    def test_close_shuts_pool_down(self):
        session = Session()
        pool = session.executor(2)
        session.close()
        with pytest.raises(RuntimeError):
            pool.submit(int)

    def test_injected_pool_runs_shards(self):
        sequences = [(i, Seq()) for i in (7, 3, 9, 5, 2)]
        solo = SequenceRunner([Probe()]).run(sequences)
        with Session() as session:
            run = SequenceRunner([Probe()]).run(
                sequences, workers=2, executor=session.executor(2)
            )
        assert [(c.seq_index, c.t, c.gaze_pred) for c in run.contexts] == [
            (c.seq_index, c.t, c.gaze_pred) for c in solo.contexts
        ]
        assert run.stage_timings["probe"].frames == 15


class TestLifecycle:
    def test_close_is_idempotent(self):
        session = Session()
        session.executor(2)
        session.close()
        session.close()  # second close is a no-op, not an error

    def test_run_after_close_raises_cleanly(self):
        session = Session()
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.run({"workload": "area"})

    def test_executor_after_close_raises_instead_of_reforking(self):
        session = Session()
        session.executor(2)
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.executor(2)
        assert session.pool_workers == 0

    def test_context_manager_reuse_after_close_raises(self):
        session = Session()
        with session:
            pass
        with pytest.raises(RuntimeError, match="closed"):
            with session:
                pass  # pragma: no cover

    def test_pool_shared_across_workload_kinds(self):
        # One pool serves sharded evaluate, serve replicas, and a
        # sharded strategy sweep alike — no per-workload re-forking.
        spec = {
            "workload": "evaluate",
            "dataset": {"num_sequences": 4, "frames_per_sequence": 6},
            "training": {"train_indices": [0, 1], "epochs": 1},
            "execution": {"workers": 2},
        }
        with Session() as session:
            session.run(spec)
            assert session.stats()["pools_created"] == 1
            session.run(
                {
                    **spec,
                    "workload": "serve",
                    "execution": {
                        "workers": 2,
                        "serve": {"num_clients": 4, "duration_ticks": 4},
                    },
                }
            )
            assert session.stats()["pools_created"] == 1
            assert session.pool_workers == 2


class TestBackends:
    def test_grow_while_cached_runs_exist(self):
        # Satellite of the executor-backend work: growing the backend
        # mid-session must drain the old pool (shutdown(wait=True)) and
        # must not invalidate memoized results produced on it — the
        # grown pool replays them bitwise from the cache.
        spec = {
            "workload": "evaluate",
            "dataset": {"num_sequences": 4, "frames_per_sequence": 6},
            "training": {"train_indices": [0, 1], "epochs": 1},
            "execution": {"workers": 2},
        }
        with Session() as session:
            first = session.run(spec)
            misses = session.stats()["train_cache_misses"]
            grown = session.executor(3)  # grow while cached runs exist
            assert grown.max_workers == 3
            assert session.stats()["pools_created"] == 2
            again = session.run(spec)
            assert session.stats()["train_cache_misses"] == misses
            assert again.metrics == first.metrics
            # The grown pool is the one the rerun used (grow-only).
            assert session.pool_workers == 3

    def test_in_process_backend_forces_serial_reference(self):
        with Session() as session:
            assert session.executor(4, backend="in_process") is None
            assert session.stats()["pools_created"] == 0

    def test_each_backend_kind_gets_its_own_executor(self):
        with Session() as session:
            pool = session.executor(2, backend="process_pool")
            threads = session.executor(2, backend="thread")
            assert pool is not threads
            assert session.executor(2, backend="thread") is threads
            assert session.stats()["pools_created"] == 2

    def test_thread_and_file_queue_match_process_pool(self):
        # Workload-level parity: the same sharded evaluate spec through
        # three concurrent backends produces identical metrics.
        base = {
            "workload": "evaluate",
            "dataset": {"num_sequences": 4, "frames_per_sequence": 6},
            "training": {"train_indices": [0, 1], "epochs": 1},
        }
        results = {}
        for backend in ("in_process", "thread", "file_queue"):
            with Session() as session:
                results[backend] = session.run(
                    {**base, "execution": {"workers": 2, "backend": backend}}
                ).metrics
        assert results["thread"] == results["in_process"]
        assert results["file_queue"] == results["in_process"]

    def test_backend_recorded_in_provenance(self):
        with Session() as session:
            result = session.run(
                {
                    "workload": "area",
                    "execution": {"backend": "thread"},
                }
            )
        assert result.provenance["backend"] == "thread"

    def test_unknown_backend_is_a_spec_error(self):
        with pytest.raises(SpecError, match="execution.backend"):
            ExperimentSpec.from_dict(
                {"execution": {"backend": "slurm"}}
            )


class TestStats:
    def test_stats_reports_memo_accounting(self, tiny_session):
        stats = tiny_session.stats()
        assert stats["memo_entries"] == len(tiny_session._memo)
        assert stats["memo_entries"] > 0
        # Trained pipelines serialize to real bytes.
        assert stats["memo_bytes"] > 1000

    def test_stats_includes_store_occupancy_when_attached(self, tmp_path):
        with Session(store=tmp_path / "store") as session:
            session.run({"workload": "area"})
            stats = session.stats()
        assert stats["store"]["entries"] == 1  # the RunResult
        assert stats["store"]["puts"] == 1


class TestNoiseOverrides:
    def test_noise_overrides_reach_dataset_config(self):
        from repro.api.session import system_config

        spec = ExperimentSpec.from_dict(
            {
                "dataset": {
                    "noise": {"read_noise_electrons": 9.0, "bit_depth": 8}
                }
            }
        )
        noise = system_config(spec).dataset.noise
        assert noise.read_noise_electrons == 9.0
        assert noise.bit_depth == 8
        # Untouched fields keep the physical defaults.
        default = system_config(ExperimentSpec.from_dict({})).dataset.noise
        assert (
            noise.electrons_per_second_full_scale
            == default.electrons_per_second_full_scale
        )

    def test_noise_override_is_hash_covered_and_retrains(self, tiny_session):
        noisy = ExperimentSpec.from_dict(
            {
                **TINY,
                "dataset": {
                    **TINY["dataset"],
                    "noise": {"read_noise_electrons": 40.0},
                },
            }
        )
        base = ExperimentSpec.from_dict(TINY)
        assert noisy.section_hash("dataset") != base.section_hash("dataset")
        before = tiny_session.stats()["train_cache_misses"]
        tiny_session.run(noisy)
        assert tiny_session.stats()["train_cache_misses"] == before + 1


class TestRunEntry:
    def test_accepts_dict(self):
        with Session() as session:
            result = session.run({"workload": "energy"})
        assert result.workload == "energy"

    def test_rejects_other_types(self):
        with Session() as session:
            with pytest.raises(SpecError):
                session.run("energy")

    def test_invalid_spec_rejected_before_dispatch(self):
        with Session() as session:
            with pytest.raises(SpecError, match="workload"):
                session.run({"workload": "nope"})
            assert session.stats()["runs"] == 0

    def test_provenance_stamped(self):
        spec = ExperimentSpec.from_dict({"workload": "area"})
        with Session() as session:
            result = session.run(spec)
        prov = result.provenance
        assert prov["spec_hash"] == spec.spec_hash()
        assert prov["seed"] == spec.dataset.seed
        assert prov["workers"] == 1
        assert prov["spec"] == spec.to_dict()

    def test_json_serializer_round_trips(self, tmp_path):
        import json

        with Session() as session:
            result = session.run({"workload": "latency"})
        path = result.write_json(tmp_path / "out.json")
        data = json.loads(path.read_text())
        assert data["workload"] == "latency"
        assert data["metrics"] == result.metrics
        assert "tables" not in data  # renderings never leak into JSON
