"""Registries: strict names, decorators, populated built-ins."""

import pytest

from repro.api import (
    Registry,
    RegistryError,
    STAGES,
    STRATEGIES,
    WORKLOADS,
)
from repro.sampling import STRATEGY_NAMES


class TestRegistry:
    def test_register_and_get(self):
        reg = Registry("thing")
        reg.register("a", object)
        assert reg.get("a") is object
        assert "a" in reg and len(reg) == 1

    def test_decorator_form(self):
        reg = Registry("thing")

        @reg.register("fn")
        def fn():
            return 42

        assert reg.get("fn") is fn

    def test_duplicate_name_rejected(self):
        reg = Registry("thing")
        reg.register("a", object)
        with pytest.raises(RegistryError, match="duplicate thing name 'a'"):
            reg.register("a", int)

    def test_unknown_name_lists_choices(self):
        reg = Registry("thing")
        reg.register("alpha", object)
        with pytest.raises(RegistryError, match=r"choose from \['alpha'\]"):
            reg.get("beta")

    def test_empty_name_rejected(self):
        reg = Registry("thing")
        with pytest.raises(RegistryError):
            reg.register("", object)
        with pytest.raises(RegistryError):
            reg.register(None, object)


class TestBuiltins:
    def test_all_strategies_registered(self):
        assert set(STRATEGY_NAMES) <= set(STRATEGIES.names())

    def test_all_workloads_registered(self):
        assert set(WORKLOADS.names()) >= {
            "evaluate",
            "strategy_sweep",
            "throughput",
            "energy",
            "latency",
            "area",
            "power",
            "fps_sweep",
            "node_sweep",
        }

    def test_canonical_stages_registered(self):
        assert {"eventify", "roi_predict", "roi_reuse", "sample", "readout",
                "segment", "gaze", "stats", "eventify_pair",
                "strategy_sample", "segment_or_reuse"} <= set(STAGES.names())

    def test_strategy_factories_construct(self):
        strategy = STRATEGIES.get("Ours (ROI+Random)")(8.0)
        assert strategy.compression == 8.0

    def test_roi_fixed_requires_dataset(self):
        with pytest.raises(ValueError, match="needs a dataset"):
            STRATEGIES.get("ROI+Fixed")(8.0)

    def test_make_strategy_shim_delegates_to_registry(self):
        from repro.core import make_strategy

        strategy = make_strategy("Full+Random", compression=4.0)
        assert type(strategy) is type(STRATEGIES.get("Full+Random")(4.0))
        with pytest.raises(RegistryError, match="unknown strategy"):
            make_strategy("Nope", 4.0)
