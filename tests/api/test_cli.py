"""CLI over the declarative API: specs in, uniform JSON out, exit codes."""

import json

import pytest

from repro.api import ExperimentSpec
from repro.cli import build_parser, main


class TestSpecBuilders:
    @pytest.mark.parametrize(
        "command, workload",
        [
            ("energy", "energy"),
            ("latency", "latency"),
            ("area", "area"),
            ("power", "power"),
            ("sweep-fps", "fps_sweep"),
            ("sweep-node", "node_sweep"),
        ],
    )
    def test_hardware_commands_emit_json(
        self, command, workload, capsys, tmp_path
    ):
        out_path = tmp_path / "out.json"
        assert main([command, "--json", str(out_path)]) == 0
        assert len(capsys.readouterr().out.splitlines()) >= 3
        data = json.loads(out_path.read_text())
        assert data["workload"] == workload
        assert data["provenance"]["spec_hash"]
        assert data["metrics"]

    def test_fps_flag_reaches_spec_and_output(self, capsys, tmp_path):
        out_path = tmp_path / "out.json"
        assert main(["energy", "--fps", "60", "--json", str(out_path)]) == 0
        assert "60" in capsys.readouterr().out
        data = json.loads(out_path.read_text())
        assert data["metrics"]["fps"] == 60.0
        assert data["provenance"]["spec"]["execution"]["fps"] == 60.0


class TestRunCommand:
    def test_run_executes_spec_file(self, capsys, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            ExperimentSpec.from_dict({"workload": "area"}).to_json()
        )
        out_path = tmp_path / "out.json"
        assert main(["run", str(spec_path), "--json", str(out_path)]) == 0
        assert "TOTAL" in capsys.readouterr().out
        assert json.loads(out_path.read_text())["workload"] == "area"

    def test_workers_override_recorded(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            ExperimentSpec.from_dict({"workload": "power"}).to_json()
        )
        out_path = tmp_path / "out.json"
        assert main(
            ["run", str(spec_path), "--workers", "2", "--json", str(out_path)]
        ) == 0
        data = json.loads(out_path.read_text())
        assert data["provenance"]["workers"] == 2

    def test_invalid_workers_override_exits_2(self, capsys, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            ExperimentSpec.from_dict({"workload": "area"}).to_json()
        )
        assert main(["run", str(spec_path), "--workers", "-2"]) == 2
        assert "execution.workers" in capsys.readouterr().err

    def test_missing_spec_file_exits_2(self, capsys, tmp_path):
        assert main(["run", str(tmp_path / "nope.json")]) == 2
        assert "spec error" in capsys.readouterr().err

    def test_invalid_spec_exits_2(self, capsys, tmp_path):
        spec_path = tmp_path / "bad.json"
        spec_path.write_text('{"workload": "bogus"}')
        assert main(["run", str(spec_path)]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_unknown_field_exits_2_with_field_name(self, capsys, tmp_path):
        spec_path = tmp_path / "bad.json"
        spec_path.write_text('{"execution": {"workerz": 2}}')
        assert main(["run", str(spec_path)]) == 2
        assert "execution.workerz" in capsys.readouterr().err

    def test_shipped_quickstart_spec_is_valid(self):
        from pathlib import Path

        path = (
            Path(__file__).resolve().parents[2]
            / "examples"
            / "specs"
            / "quickstart.json"
        )
        spec = ExperimentSpec.from_file(path)
        assert spec.workload == "evaluate"


class TestServeCommand:
    def test_serve_flags_reach_spec(self):
        from repro.cli import _SPEC_BUILDERS

        args = build_parser().parse_args(
            [
                "serve",
                "--clients", "6",
                "--ticks", "9",
                "--arrival", "poisson",
                "--deadline-policy", "best_effort",
                "--max-batch", "3",
            ]
        )
        spec = _SPEC_BUILDERS["serve"](args)
        serve = spec.execution.serve
        assert spec.workload == "serve"
        assert serve.num_clients == 6
        assert serve.duration_ticks == 9
        assert serve.arrival == "poisson"
        assert serve.deadline_policy == "best_effort"
        assert serve.max_batch == 3

    def test_serve_defaults_leave_batch_unbounded(self):
        from repro.cli import _SPEC_BUILDERS

        args = build_parser().parse_args(["serve"])
        spec = _SPEC_BUILDERS["serve"](args)
        assert spec.execution.serve.max_batch is None
        assert args.workers == 0

    def test_bad_arrival_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--arrival", "bursty"])


class TestParser:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])

    def test_run_requires_spec_path(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])
