"""Bitwise parity: ``Session.run`` vs the legacy entry points.

The front door must be a pure re-plumbing: for each accuracy workload,
the metrics coming out of ``Session.run(spec)`` are bitwise-identical to
what the pre-API surfaces (``BlissCamPipeline.evaluate``,
``evaluate_strategy``, ``measure_throughput``) produce from the same
inputs.  Exact float equality everywhere — no tolerances.
"""

import copy
import dataclasses

import numpy as np
import pytest

from repro.api import ExperimentSpec, Session
from repro.api.session import system_config
from repro.api.workloads import strategy_rng
from repro.core import (
    BlissCamPipeline,
    evaluate_strategy,
    make_strategy,
)
from repro.core.throughput import measure_throughput
from repro.core.variants import train_for_strategy
from repro.segmentation import ViTSegmenter
from repro.synth import SyntheticEyeDataset


class TestEvaluateParity:
    SPEC = {
        "workload": "evaluate",
        "dataset": {"num_sequences": 3, "frames_per_sequence": 6},
        "training": {"epochs": 1},
    }

    @pytest.fixture(scope="class")
    def api_result(self):
        with Session() as session:
            yield session.run(ExperimentSpec.from_dict(self.SPEC))

    @pytest.fixture(scope="class")
    def legacy_result(self):
        pipeline = BlissCamPipeline(
            system_config(ExperimentSpec.from_dict(self.SPEC))
        )
        pipeline.train()
        return pipeline.evaluate()

    def test_error_stats_bitwise(self, api_result, legacy_result):
        assert api_result.metrics["horizontal"] == dataclasses.asdict(
            legacy_result.horizontal
        )
        assert api_result.metrics["vertical"] == dataclasses.asdict(
            legacy_result.vertical
        )

    def test_workload_stats_bitwise(self, api_result, legacy_result):
        m = api_result.metrics
        assert m["mean_compression"] == legacy_result.stats.mean_compression
        assert m["mean_roi_iou"] == legacy_result.stats.mean_roi_iou
        assert m["mean_transmitted_bytes"] == float(
            np.mean(legacy_result.stats.transmitted_bytes)
        )

    def test_workload_profile_bitwise(self, api_result, legacy_result):
        assert api_result.workload_profile == dataclasses.asdict(
            legacy_result.stats.to_profile()
        )

    def test_stage_timings_cover_the_graph(self, api_result):
        assert set(api_result.stage_timings) == {
            "eventify", "roi", "sample", "readout", "segment", "gaze",
            "stats",
        }


class TestStrategySweepParity:
    NAMES = ["Full+Random", "Ours (ROI+Random)"]
    SPEC = {
        "workload": "strategy_sweep",
        "dataset": {"num_sequences": 3, "frames_per_sequence": 6},
        "strategy": {
            "names": NAMES,
            "compression": 4.0,
            "train_epochs": 1,
        },
    }

    def test_sweep_matches_legacy_harness(self):
        spec = ExperimentSpec.from_dict(self.SPEC)
        with Session() as session:
            api = session.run(spec)

        config = system_config(spec)
        dataset = SyntheticEyeDataset(config.dataset)
        train_idx, eval_idx = dataset.split()
        for name in self.NAMES:
            # The workload's documented RNG regime: one stream per
            # strategy keyed by (sweep seed, name), training and
            # evaluation drawing from it in order.
            rng = strategy_rng(spec.strategy.seed, name)
            strategy = make_strategy(name, 4.0, dataset)
            segmenter = ViTSegmenter(config.vit, rng)
            train_for_strategy(
                segmenter, strategy, dataset, train_idx, 1, rng
            )
            legacy = evaluate_strategy(
                strategy, segmenter, dataset, eval_idx, rng
            )
            got = api.metrics["strategies"][name]
            assert got["horizontal"] == dataclasses.asdict(legacy.horizontal)
            assert got["vertical"] == dataclasses.asdict(legacy.vertical)
            assert got["mean_compression"] == legacy.mean_compression
            assert got["frames"] == legacy.frames

    def test_use_gt_roi_flag_reaches_the_graph(self):
        # With the flag off, ROI strategies fall back to full-frame
        # boxes — the results must change (the flag is not a no-op),
        # while the cached training is reused (eval-only knob).
        spec = ExperimentSpec.from_dict(self.SPEC)
        no_roi = ExperimentSpec.from_dict(
            {
                **self.SPEC,
                "strategy": {**self.SPEC["strategy"], "use_gt_roi": False},
            }
        )
        with Session() as session:
            with_roi = session.run(spec)
            misses = session.stats()["train_cache_misses"]
            without_roi = session.run(no_roi)
            assert session.stats()["train_cache_misses"] == misses
        ours = "Ours (ROI+Random)"
        assert (
            with_roi.metrics["strategies"][ours]
            != without_roi.metrics["strategies"][ours]
        )

    def test_cache_hit_rerun_is_bitwise_stable(self):
        # The memoized (strategy, segmenter, RNG-state) triple must make
        # a re-run replay evaluation exactly, not continue the stream.
        spec = ExperimentSpec.from_dict(self.SPEC)
        with Session() as session:
            first = session.run(spec)
            second = session.run(spec)
            assert session.stats()["train_cache_hits"] > 0
        assert first.metrics == second.metrics


class TestThroughputParity:
    SPEC = {
        "workload": "throughput",
        "dataset": {"num_sequences": 4, "frames_per_sequence": 6},
        "training": {"epochs": 1, "train_indices": [0, 1]},
        "execution": {"repeats": 1, "eval_indices": [2, 3]},
    }

    def test_deterministic_fields_match_legacy(self):
        spec = ExperimentSpec.from_dict(self.SPEC)
        with Session() as session:
            api = session.run(spec).metrics

        pipeline = BlissCamPipeline(system_config(spec))
        pipeline.train([0, 1])
        legacy = measure_throughput(pipeline, [2, 3], repeats=1)

        # Wall-clock fields are nondeterministic by nature; everything
        # the engine *computes* must agree exactly.
        assert api["sequences"] == legacy["sequences"]
        assert api["frames"] == legacy["frames"]
        assert api["bitwise_identical"] is True
        assert legacy["bitwise_identical"] is True
        assert set(api["stage_seconds_sequential"]) == set(
            legacy["stage_seconds_sequential"]
        )
