"""The ``serve`` workload through the declarative front door."""

import json

import pytest

from repro.api import ExperimentSpec, Session

SPEC = {
    "workload": "serve",
    "dataset": {"num_sequences": 3, "frames_per_sequence": 6},
    "training": {"train_indices": [0, 1], "epochs": 1},
    "execution": {"serve": {"num_clients": 4, "duration_ticks": 6}},
}


@pytest.fixture(scope="module")
def session():
    with Session() as session:
        yield session


def test_serve_metrics_shape(session):
    result = session.run(ExperimentSpec.from_dict(SPEC))
    assert result.workload == "serve"
    telemetry = result.metrics["telemetry"]
    for key in ("p50", "p95", "p99"):
        assert telemetry["latency_ms"][key] is not None
    assert "drop_rate" in telemetry
    assert telemetry["frames"]["completed"] > 0
    assert telemetry["frames"]["bootstrap"] == 4  # one per client
    assert len(telemetry["per_client"]) == 4
    assert len(telemetry["queue_depth"]["trace"]) == 6
    assert result.metrics["served_fps_wall"] > 0
    # The scorecard table renders.
    assert "serving scorecard" in result.render_tables()


def test_serve_deterministic_telemetry_json(session):
    """Same spec + seed -> byte-identical telemetry serialization."""
    spec = ExperimentSpec.from_dict(SPEC)
    a = session.run(spec).metrics["telemetry"]
    b = session.run(spec).metrics["telemetry"]
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


def test_serve_seed_changes_telemetry(session):
    base = session.run(ExperimentSpec.from_dict(SPEC)).metrics["telemetry"]
    reseeded_spec = {
        **SPEC,
        "execution": {"serve": {**SPEC["execution"]["serve"], "seed": 9}},
    }
    reseeded = session.run(
        ExperimentSpec.from_dict(reseeded_spec)
    ).metrics["telemetry"]
    assert reseeded["gaze_error_deg"] != base["gaze_error_deg"]


def test_serve_reuses_memoized_training(session):
    before = session.stats()["train_cache_misses"]
    session.run(ExperimentSpec.from_dict(SPEC))
    assert session.stats()["train_cache_misses"] == before


def test_serve_sharded_replicas_match_single(session):
    spec = ExperimentSpec.from_dict(SPEC)
    single = session.run(spec).metrics["telemetry"]
    sharded_spec = ExperimentSpec.from_dict(
        {**SPEC, "execution": {**SPEC["execution"], "workers": 2}}
    )
    result = session.run(sharded_spec)
    assert result.metrics["replicas"] == 2
    # Uncontended scenario: replica partitioning must not perturb the
    # summary (order-insensitive telemetry reductions).
    assert json.dumps(result.metrics["telemetry"], sort_keys=True) == (
        json.dumps(single, sort_keys=True)
    )
