"""``benchmarks/_helpers.record_bench``: trajectory hygiene.

The ``BENCH_*.json`` trajectories are the perf history successive PRs
read; two properties keep them meaningful:

* dirty-tree runs carry an explicit ``"dirty": true`` flag (consumers
  filter on it instead of string-parsing the ``-dirty`` suffix);
* re-running a deterministic bench at the same commit must not append a
  duplicate entry — the history grows on *change*, not on every run.
"""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "benchmarks"))

import _helpers  # noqa: E402
from _helpers import record_bench  # noqa: E402


@pytest.fixture
def clean_stamp(monkeypatch):
    monkeypatch.setattr(_helpers, "git_describe", lambda: "v9-3-gabc1234")


class TestDirtyFlag:
    def test_clean_tree_records_dirty_false(self, tmp_path, clean_stamp):
        out = record_bench(tmp_path / "b.json", {"metric": 1})
        assert out["latest"]["dirty"] is False
        assert out["latest"]["git"] == "v9-3-gabc1234"

    def test_dirty_tree_records_explicit_flag(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            _helpers, "git_describe", lambda: "v9-3-gabc1234-dirty"
        )
        out = record_bench(tmp_path / "b.json", {"metric": 1})
        assert out["latest"]["dirty"] is True


class TestDuplicateSuppression:
    def test_identical_rerun_appends_nothing(self, tmp_path, clean_stamp):
        path = tmp_path / "b.json"
        record_bench(path, {"metric": 1.5})
        out = record_bench(path, {"metric": 1.5})
        assert len(out["trajectory"]) == 1
        assert out["latest"]["metric"] == 1.5

    def test_changed_metrics_append(self, tmp_path, clean_stamp):
        path = tmp_path / "b.json"
        record_bench(path, {"metric": 1.5})
        out = record_bench(path, {"metric": 2.0})
        assert len(out["trajectory"]) == 2
        assert [e["metric"] for e in out["trajectory"]] == [1.5, 2.0]

    def test_changed_git_stamp_appends(self, tmp_path, monkeypatch):
        path = tmp_path / "b.json"
        monkeypatch.setattr(_helpers, "git_describe", lambda: "v1")
        record_bench(path, {"metric": 1.5})
        monkeypatch.setattr(_helpers, "git_describe", lambda: "v2")
        out = record_bench(path, {"metric": 1.5})
        assert len(out["trajectory"]) == 2

    def test_legacy_flat_record_still_migrates(self, tmp_path, clean_stamp):
        path = tmp_path / "b.json"
        path.write_text(json.dumps({"old": "flat record"}))
        out = record_bench(path, {"metric": 1})
        assert out["trajectory"][0] == {"old": "flat record"}
        assert out["trajectory"][1]["metric"] == 1
        assert json.loads(path.read_text()) == out
