"""Corner-case integration tests: blinks, saccades, and sequence edges.

These exercise the situations Sec. III-A singles out as the reason the
ROI predictor gets the previous segmentation map as a corrective cue:
frames where events stop being indicative of the foreground.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core import BlissCamPipeline, ci
from repro.synth import (
    DatasetConfig,
    EyeGeometry,
    EyeRenderer,
    EyeState,
    GazeDynamicsConfig,
    SyntheticEyeDataset,
)


@pytest.fixture(scope="module")
def blink_heavy_pipeline():
    config = ci(num_sequences=3, frames_per_sequence=12)
    config = replace(
        config,
        dataset=replace(
            config.dataset,
            dynamics=GazeDynamicsConfig(blink_rate_hz=15.0, fixation_mean_s=0.05),
        ),
    )
    pipeline = BlissCamPipeline(config)
    pipeline.train([0, 1])
    return pipeline


class TestBlinkHandling:
    def test_dataset_contains_blinks(self, blink_heavy_pipeline):
        total_blinks = sum(
            int(blink_heavy_pipeline.dataset[i].blink_flags.sum()) for i in range(3)
        )
        assert total_blinks > 0

    def test_pipeline_survives_blink_sequences(self, blink_heavy_pipeline):
        result = blink_heavy_pipeline.evaluate([2])
        assert result.horizontal.count > 0
        assert np.isfinite(result.horizontal.mean)
        assert np.isfinite(result.vertical.mean)

    def test_fully_closed_eye_frame_has_no_gt_box(self):
        rng = np.random.default_rng(0)
        renderer = EyeRenderer(EyeGeometry(), 32, 32, rng)
        closed = renderer.render(EyeState(lid_aperture=0.0))
        assert closed.roi_box is None

    def test_joint_training_with_forced_blinks(self):
        """A sequence where half the frames are occluded still trains."""
        from repro.sampling import ROIPredictor
        from repro.segmentation import ViTConfig, ViTSegmenter
        from repro.training import JointTrainConfig, JointTrainer

        rng = np.random.default_rng(1)
        ds = SyntheticEyeDataset(
            DatasetConfig(
                height=32,
                width=32,
                frames_per_sequence=8,
                num_sequences=1,
                dynamics=GazeDynamicsConfig(
                    blink_rate_hz=20.0, blink_duration_s=(0.1, 0.2)
                ),
            )
        )
        roi = ROIPredictor(32, 32, rng, base_channels=2)
        vit = ViTSegmenter(
            ViTConfig(height=32, width=32, patch=8, dim=24, heads=3,
                      depth=1, decoder_depth=1),
            rng,
        )
        trainer = JointTrainer(roi, vit, JointTrainConfig(epochs=1), rng)
        result = trainer.train(ds, [0])
        assert np.isfinite(result.seg_losses[0])


class TestSequenceEdges:
    def test_sensor_bootstrap_skips_first_frame(self, blink_heavy_pipeline):
        """Evaluation never emits a gaze estimate for bootstrap frames."""
        result = blink_heavy_pipeline.evaluate([2])
        frames = len(blink_heavy_pipeline.dataset[2])
        assert result.horizontal.count == frames - 1

    def test_reuse_policy_across_sequence_boundary(self, blink_heavy_pipeline):
        """Reuse windows reset at sequence boundaries (no stale boxes)."""
        result = blink_heavy_pipeline.evaluate([2], reuse_window=4)
        assert result.horizontal.count > 0

    def test_single_eval_sequence_deterministic(self, blink_heavy_pipeline):
        a = blink_heavy_pipeline.evaluate([2], sensor_seed=7)
        b = blink_heavy_pipeline.evaluate([2], sensor_seed=7)
        np.testing.assert_allclose(a.predictions, b.predictions)

    def test_different_sensor_seed_changes_sampling(self, blink_heavy_pipeline):
        a = blink_heavy_pipeline.evaluate([2], sensor_seed=7)
        b = blink_heavy_pipeline.evaluate([2], sensor_seed=8)
        # Different SRAM RNG -> different sampled pixels -> different bytes.
        assert a.stats.transmitted_bytes != b.stats.transmitted_bytes
