"""Integration tests: the end-to-end pipeline and the variant harness."""

import numpy as np
import pytest

from repro.core import (
    BlissCamPipeline,
    PaperComparison,
    Table,
    ci,
    evaluate_strategy,
    make_strategy,
    paper,
    train_for_strategy,
)
from repro.segmentation import ViTConfig, ViTSegmenter
from repro.synth import DatasetConfig, SyntheticEyeDataset


@pytest.fixture(scope="module")
def trained_pipeline():
    pipe = BlissCamPipeline(ci(num_sequences=3, frames_per_sequence=8))
    pipe.train([0, 1])
    return pipe


class TestBlissCamPipeline:
    def test_training_improves_losses(self, trained_pipeline):
        result = trained_pipeline._train_result
        assert result.improved
        assert result.roi_losses[-1] < result.roi_losses[0]

    def test_evaluation_produces_errors_and_stats(self, trained_pipeline):
        result = trained_pipeline.evaluate([2])
        assert result.horizontal.count > 0
        assert result.horizontal.mean >= 0
        assert 0 < result.stats.mean_sampled_fraction < 1
        assert 0 < result.stats.mean_valid_token_fraction <= 1
        assert result.stats.mean_compression > 1

    def test_stats_feed_hardware_profile(self, trained_pipeline):
        result = trained_pipeline.evaluate([2])
        profile = result.stats.to_profile()
        assert profile.sampled_fraction == pytest.approx(
            result.stats.mean_sampled_fraction
        )

    def test_roi_reuse_degrades_accuracy(self, trained_pipeline):
        """Table I direction: larger reuse windows should not help."""
        fresh = trained_pipeline.evaluate([2], reuse_window=1)
        reused = trained_pipeline.evaluate([2], reuse_window=16)
        # Reuse can only match or hurt; allow noise slack.
        assert (
            reused.vertical.mean + reused.horizontal.mean
            >= 0.7 * (fresh.vertical.mean + fresh.horizontal.mean)
        )

    def test_evaluate_before_train_raises(self):
        pipe = BlissCamPipeline(ci(num_sequences=2, frames_per_sequence=4))
        with pytest.raises(RuntimeError):
            pipe.evaluate()

    def test_paper_config_shape(self):
        cfg = paper()
        assert (cfg.height, cfg.width) == (400, 640)
        assert cfg.vit.depth == 12
        assert cfg.joint.epochs == 250


class TestStrategyHarness:
    @pytest.fixture(scope="class")
    def setup(self):
        ds = SyntheticEyeDataset(
            DatasetConfig(height=32, width=32, frames_per_sequence=6, num_sequences=3)
        )
        rng = np.random.default_rng(0)
        vit = ViTSegmenter(
            ViTConfig(height=32, width=32, patch=8, dim=24, heads=3,
                      depth=1, decoder_depth=1),
            rng,
        )
        return ds, rng, vit

    def test_train_and_evaluate_ours(self, setup):
        ds, rng, vit = setup
        strategy = make_strategy("Ours (ROI+Random)", compression=4.0)
        train_for_strategy(vit, strategy, ds, [0, 1], epochs=2, rng=rng)
        result = evaluate_strategy(strategy, vit, ds, [2], rng)
        assert result.frames > 0
        assert result.mean_compression > 1.5

    def test_skip_strategy_reuses_segmentations(self, setup):
        ds, rng, vit = setup
        strategy = make_strategy("Skip", compression=4.0)
        result = evaluate_strategy(strategy, vit, ds, [2], rng)
        assert result.frames > 0

    def test_make_strategy_all_names(self, setup):
        ds, _, _ = setup
        from repro.sampling import STRATEGY_NAMES

        for name in STRATEGY_NAMES:
            strategy = make_strategy(name, compression=8.0, dataset=ds)
            assert strategy.name == name

    def test_make_strategy_unknown_raises(self):
        with pytest.raises(ValueError):
            make_strategy("nope", 4.0)

    def test_roi_fixed_needs_dataset(self):
        with pytest.raises(ValueError):
            make_strategy("ROI+Fixed", 4.0)


class TestResultsFormatting:
    def test_table_renders_aligned(self):
        table = Table(["a", "bb"], title="T")
        table.add_row(1, 2.5)
        table.add_row("xyz", 0.0001)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 5  # title, header, separator, two rows
        assert "xyz" in lines[4]

    def test_table_validates_row_length(self):
        table = Table(["a"])
        with pytest.raises(ValueError):
            table.add_row(1, 2)

    def test_paper_comparison(self):
        cmp = PaperComparison("Fig. X")
        cmp.add("saving", 4.0, 4.7)
        text = cmp.render()
        assert "Fig. X" in text and "4.7" in text
