"""Regression tests for the shared throughput-measurement harness.

Each class pins one of the historical bugs:

* best-of-N timing used to report the *last* repeat's result next to the
  *best* repeat's wall time;
* an empty ``eval_indices`` crashed deep inside the warm-up
  (``evaluate([])``) instead of failing fast;
* a timed section rounding to 0 s divided by zero;
* ``throughput_tables`` raised ``KeyError`` when the modes reported
  different stage-name sets.
"""

import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core import BlissCamPipeline, ci
from repro.core.throughput import _rate, measure_throughput, throughput_tables
from repro.engine import StageTiming


def _fake_result(marker: float, frames: int = 5) -> SimpleNamespace:
    """The slice of EvaluationResult that measure_throughput consumes."""
    return SimpleNamespace(
        horizontal=SimpleNamespace(count=frames),
        predictions=np.zeros((frames, 2)),
        stats=SimpleNamespace(transmitted_bytes=[1] * frames),
        stage_timings={"marker": StageTiming(seconds=marker, frames=frames)},
    )


class _FakePipeline:
    """Deterministic evaluate() with a scripted duration per timed call."""

    def __init__(self, durations: list[float]):
        self.dataset = {i: None for i in range(8)}
        self._durations = iter(durations)
        self._calls = 0

    def evaluate(self, indices, batched=False, workers=None):
        self._calls += 1
        if self._calls <= 2:  # the two warm-up calls are untimed
            return _fake_result(marker=-1.0)
        duration = next(self._durations)
        time.sleep(duration)
        return _fake_result(marker=duration)


class TestBestOfPairing:
    def test_result_comes_from_the_best_repeat(self):
        # sequential repeats: 30 ms, 5 ms, 20 ms -> best is repeat 2;
        # batched repeats: 8 ms, 25 ms, 25 ms -> best is repeat 1.
        fake = _FakePipeline(
            durations=[0.03, 0.005, 0.02, 0.008, 0.025, 0.025]
        )
        record = measure_throughput(fake, [0, 1, 2], repeats=3)
        assert record["stage_seconds_sequential"]["marker"] == 0.005
        assert record["stage_seconds_batched"]["marker"] == 0.008
        assert record["sequential_s"] < 0.02
        assert record["batched_s"] < 0.025


class TestEmptyIndices:
    def test_empty_eval_indices_fails_fast(self):
        pipeline = BlissCamPipeline(ci())
        with pytest.raises(ValueError, match="non-empty"):
            measure_throughput(pipeline, [])


class TestZeroDuration:
    def test_rate_survives_zero_seconds(self):
        assert _rate(10, 0.0) == float("inf")
        assert _rate(10, 2.0) == 5.0
        assert _rate(0, 0.0) == float("inf")

    def test_tables_survive_zero_wall_times(self):
        record = {
            "sequences": 1,
            "frames": 5,
            "sequential_s": 0.0,
            "batched_s": 0.0,
            "sequential_fps": float("inf"),
            "batched_fps": float("inf"),
            "speedup": float("inf"),
            "bitwise_identical": True,
            "stage_seconds_sequential": {"a": 0.0},
            "stage_seconds_batched": {"a": 0.0},
        }
        tables = throughput_tables(record)
        assert len(tables) == 2
        for table in tables:
            assert table.render()


class TestStageNameUnion:
    def test_disjoint_stage_sets_default_to_zero(self):
        record = {
            "sequences": 2,
            "frames": 10,
            "sequential_s": 0.5,
            "batched_s": 0.25,
            "sequential_fps": 20.0,
            "batched_fps": 40.0,
            "speedup": 2.0,
            "bitwise_identical": True,
            "stage_seconds_sequential": {"eventify": 0.1, "roi": 0.2},
            "stage_seconds_batched": {"eventify": 0.05, "segment": 0.1},
        }
        tables = throughput_tables(record)  # KeyError before the fix
        rendered = tables[1].render()
        for name in ("eventify", "roi", "segment"):
            assert name in rendered

    def test_sharded_column_joins_the_union(self):
        record = {
            "sequences": 2,
            "frames": 10,
            "sequential_s": 0.5,
            "batched_s": 0.25,
            "sequential_fps": 20.0,
            "batched_fps": 40.0,
            "speedup": 2.0,
            "workers": 2,
            "sharded_s": 0.3,
            "sharded_fps": 33.3,
            "sharded_speedup": 1.67,
            "bitwise_identical": True,
            "stage_seconds_sequential": {"eventify": 0.1},
            "stage_seconds_batched": {"eventify": 0.05},
            "stage_seconds_sharded": {"eventify": 0.06, "extra": 0.01},
        }
        tables = throughput_tables(record)
        assert "sharded" in tables[0].render()
        assert "extra" in tables[1].render()


class TestEndToEndWithWorkers:
    def test_measure_throughput_records_sharded_mode(self):
        pipeline = BlissCamPipeline(ci(num_sequences=5, frames_per_sequence=6))
        pipeline.train([0, 1])
        record = measure_throughput(
            pipeline, [2, 3, 4], repeats=1, workers=2
        )
        assert record["bitwise_identical"]
        assert record["workers"] == 2
        assert record["sharded_s"] > 0
        assert record["sharded_speedup"] > 0
        assert set(record["stage_seconds_sharded"]) == set(
            record["stage_seconds_sequential"]
        )
        # All three fps tables render without error.
        assert len(throughput_tables(record)) == 2
