"""Unit tests for result records, workload stats, and table formatting."""

import numpy as np
import pytest

from repro.core.pipeline import EvaluationResult, WorkloadStats
from repro.core.results import Table, _fmt
from repro.gaze.metrics import AngularErrorStats
from repro.hardware import WorkloadProfile


def record(stats, n=3, **overrides):
    base = dict(
        roi_fraction=0.15,
        sampled_fraction=0.05,
        token_fraction=0.11,
        tx_bytes=300,
        rle_ratio=2.0,
        roi_iou=0.7,
    )
    base.update(overrides)
    for _ in range(n):
        stats.record(**base)


class TestWorkloadStats:
    def test_means(self):
        stats = WorkloadStats()
        record(stats)
        assert stats.mean_roi_fraction == pytest.approx(0.15)
        assert stats.mean_sampled_fraction == pytest.approx(0.05)
        assert stats.mean_valid_token_fraction == pytest.approx(0.11)
        assert stats.mean_compression == pytest.approx(20.0)
        assert stats.mean_roi_iou == pytest.approx(0.7)

    def test_empty_stats_are_safe(self):
        stats = WorkloadStats()
        assert stats.mean_roi_fraction == 0.0
        assert stats.mean_compression == float("inf")
        assert stats.mean_roi_iou == 0.0

    def test_none_iou_skipped(self):
        stats = WorkloadStats()
        record(stats, n=1, roi_iou=None)
        record(stats, n=1, roi_iou=0.5)
        assert stats.mean_roi_iou == pytest.approx(0.5)

    def test_to_profile_overrides_fractions(self):
        stats = WorkloadStats()
        record(stats)
        profile = stats.to_profile(WorkloadProfile())
        assert profile.roi_fraction == pytest.approx(0.15)
        assert profile.sampled_fraction == pytest.approx(0.05)
        assert profile.valid_token_fraction == pytest.approx(0.11)
        # Untouched fields keep the base profile's values.
        assert profile.seg_macs_dense == WorkloadProfile().seg_macs_dense

    def test_to_profile_clamps_zero_fractions(self):
        stats = WorkloadStats()
        record(stats, n=1, roi_fraction=0.0, sampled_fraction=0.0,
               token_fraction=0.0)
        profile = stats.to_profile()
        assert profile.roi_fraction > 0
        assert profile.sampled_fraction > 0


class TestEvaluationResult:
    @staticmethod
    def make(h_mean, v_mean):
        stats = AngularErrorStats(h_mean, 0.1, h_mean, h_mean, 10)
        stats_v = AngularErrorStats(v_mean, 0.1, v_mean, v_mean, 10)
        return EvaluationResult(
            horizontal=stats,
            vertical=stats_v,
            stats=WorkloadStats(),
            predictions=np.zeros((10, 2)),
            truths=np.zeros((10, 2)),
        )

    def test_within_one_degree(self):
        assert self.make(0.7, 0.8).within_one_degree
        assert not self.make(1.2, 0.5).within_one_degree
        assert not self.make(0.5, 1.2).within_one_degree


class TestFormatting:
    @pytest.mark.parametrize(
        "value, expected",
        [
            (0, "0"),
            (0.0, "0"),
            (1, "1"),
            (2.5, "2.5"),
            (2.5000001, "2.5"),
            ("text", "text"),
            (1234.5, "1.23e+03"),
            (0.0001, "0.0001"),
        ],
    )
    def test_fmt(self, value, expected):
        assert _fmt(value) == expected

    def test_table_without_title(self):
        table = Table(["x"])
        table.add_row(1)
        assert len(table.render().splitlines()) == 3

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            Table([])
