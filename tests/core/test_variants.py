"""Tests for the strategy training harness in ``core.variants``."""

import numpy as np
import pytest

import repro.core.variants as variants
from repro.core.variants import make_strategy, train_for_strategy
from repro.segmentation import ViTConfig, ViTSegmenter
from repro.synth import DatasetConfig, SyntheticEyeDataset


@pytest.fixture(scope="module")
def small_dataset():
    return SyntheticEyeDataset(
        DatasetConfig(
            height=32, width=32, frames_per_sequence=5, num_sequences=2,
            eye_scale=0.8,
        )
    )


def _vit(seed=0):
    return ViTSegmenter(
        ViTConfig(height=32, width=32, patch=8, dim=24, heads=3,
                  depth=1, decoder_depth=1),
        np.random.default_rng(seed),
    )


class TestDeterministicCollectOnce:
    """Deterministic strategies re-collected an *identical* sampled
    dataset every epoch (regression); now they collect exactly once."""

    def _count_collections(self, monkeypatch):
        calls = {"n": 0}
        original = variants.collect_sampled_dataset

        def counting(*args, **kwargs):
            calls["n"] += 1
            return original(*args, **kwargs)

        monkeypatch.setattr(variants, "collect_sampled_dataset", counting)
        return calls

    @pytest.mark.parametrize("name", ["Full+DS", "ROI+Fixed", "Skip", "ROI+DS"])
    def test_deterministic_strategies_collect_once(
        self, small_dataset, monkeypatch, name
    ):
        from repro.sampling.strategies import SkipStrategy

        calls = self._count_collections(monkeypatch)
        if name == "Skip":
            # A zero gate makes every frame a training sample — the tiny
            # fixture dataset is too quiet for the default threshold.
            strategy = SkipStrategy(4.0, density_threshold=0.0)
        else:
            strategy = make_strategy(name, 4.0, dataset=small_dataset)
        result = train_for_strategy(
            _vit(), strategy, small_dataset, [0], epochs=3,
            rng=np.random.default_rng(0),
        )
        assert calls["n"] == 1
        assert len(result.epoch_losses) == 3

    @pytest.mark.parametrize("name", ["Full+Random", "Ours (ROI+Random)"])
    def test_stochastic_strategies_resample_every_epoch(
        self, small_dataset, monkeypatch, name
    ):
        calls = self._count_collections(monkeypatch)
        strategy = make_strategy(name, 4.0, dataset=small_dataset)
        train_for_strategy(
            _vit(), strategy, small_dataset, [0], epochs=3,
            rng=np.random.default_rng(0),
        )
        assert calls["n"] == 3

    def test_deterministic_training_result_unchanged_by_the_fix(
        self, small_dataset
    ):
        """Collect-once must be a pure optimization for deterministic
        strategies: the trained weights match per-epoch re-collection."""
        from repro.core.variants import collect_sampled_dataset

        strategy = make_strategy("Full+DS", 4.0, dataset=small_dataset)
        rng = np.random.default_rng(3)
        a = collect_sampled_dataset(strategy, small_dataset, [0], rng)
        b = collect_sampled_dataset(strategy, small_dataset, [0], rng)
        assert len(a) == len(b)
        for (fa, ma, ta), (fb, mb, tb) in zip(a, b):
            assert np.array_equal(fa, fb)
            assert np.array_equal(ma, mb)
            assert np.array_equal(ta, tb)
