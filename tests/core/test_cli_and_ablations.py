"""Tests for the CLI and the ablation runners."""

import numpy as np
import pytest

from repro.analysis import (
    normalization_ablation,
    sampling_rate_sweep,
    sigma_sensitivity,
)
from repro.cli import build_parser, main
from repro.segmentation import ViTConfig, ViTSegmenter
from repro.synth import DatasetConfig, SyntheticEyeDataset


@pytest.fixture(scope="module")
def small_dataset():
    return SyntheticEyeDataset(
        DatasetConfig(
            height=32, width=32, frames_per_sequence=6, num_sequences=2,
            eye_scale=0.8,
        )
    )


class TestCLI:
    @pytest.mark.parametrize(
        "command",
        ["energy", "latency", "area", "power", "sweep-fps", "sweep-node"],
    )
    def test_hardware_commands_run(self, command, capsys):
        assert main([command]) == 0
        out = capsys.readouterr().out
        assert len(out.splitlines()) >= 3

    def test_fps_flag(self, capsys):
        assert main(["energy", "--fps", "60"]) == 0
        assert "60" in capsys.readouterr().out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])


class TestAblationRunners:
    def test_sigma_sensitivity_monotone_density(self, small_dataset):
        rows = sigma_sensitivity(small_dataset, [0.01, 0.06, 0.2])
        densities = [r["density"] for r in rows]
        assert all(a >= b for a, b in zip(densities, densities[1:]))
        for row in rows:
            assert 0.0 <= row["recall"] <= 1.0
            assert 0.0 <= row["precision"] <= 1.0

    def test_normalization_ablation_keys(self, small_dataset):
        results = normalization_ablation(small_dataset)
        assert len(results) == 2
        for stats in results.values():
            assert 0.0 <= stats["recall"] <= 1.0

    def test_sampling_rate_sweep_shapes(self, small_dataset):
        def factory(rng):
            return ViTSegmenter(
                ViTConfig(height=32, width=32, patch=8, dim=24, heads=3,
                          depth=1, decoder_depth=1),
                rng,
            )

        rows = sampling_rate_sweep(
            small_dataset, factory, rates=[0.1, 0.5], epochs=1
        )
        assert len(rows) == 2
        assert rows[0]["compression"] > rows[1]["compression"]


class TestEventMetrics:
    def test_event_recall_full_coverage(self):
        from repro.sampling import eventify
        from repro.sampling.eventification import event_precision, event_recall

        fg = np.zeros((16, 16), dtype=bool)
        fg[4:12, 4:12] = True
        events = np.zeros((16, 16), dtype=bool)
        events[4, 4] = events[11, 11] = True  # box spans the foreground
        assert event_recall(events, fg) == 1.0
        assert event_precision(events, fg) == 1.0

    def test_event_recall_no_events(self):
        from repro.sampling.eventification import event_recall

        fg = np.ones((8, 8), dtype=bool)
        assert event_recall(np.zeros((8, 8), dtype=bool), fg) == 0.0

    def test_event_recall_no_foreground_is_vacuous(self):
        from repro.sampling.eventification import event_precision, event_recall

        events = np.zeros((8, 8), dtype=bool)
        assert event_recall(events, np.zeros((8, 8), dtype=bool)) == 1.0
        assert event_precision(events, np.zeros((8, 8), dtype=bool)) == 1.0

    def test_normalized_eventification_fires_on_relative_change(self):
        from repro.sampling.eventification import eventify_normalized

        prev = np.full((4, 4), 0.1)
        cur = prev.copy()
        cur[0, 0] = 0.13  # 30 % relative change, small absolute change
        events = eventify_normalized(prev, cur, contrast_threshold=0.15)
        assert events[0, 0]
        assert events.sum() == 1

    def test_normalized_eventification_validation(self):
        from repro.sampling.eventification import eventify_normalized

        with pytest.raises(ValueError):
            eventify_normalized(np.zeros((2, 2)), np.zeros((3, 3)))
        with pytest.raises(ValueError):
            eventify_normalized(
                np.zeros((2, 2)), np.zeros((2, 2)), contrast_threshold=-1
            )
